package sim

import (
	"fmt"
	"io"
	"math/bits"

	"dxbar/internal/diag"
	"dxbar/internal/events"
	"dxbar/internal/flit"
	"dxbar/internal/snapshot"
	"dxbar/internal/traffic"
)

// RouterState is implemented by router designs with persistent cross-cycle
// state (buffers, steering pointers, arbiter rotations, event latches).
// Designs whose routers are pure functions of their latched inputs —
// Flit-Bless, SCARAB — simply don't implement it and serialize as absent.
type RouterState interface {
	SaveState(w *snapshot.Writer)
	LoadState(r *snapshot.Reader, pool *flit.Pool, nodes int) error
}

// SharedState is network-wide design state owned by no single node (the AFC
// mode controller). Routers register theirs through Env.RegisterShared at
// construction; the engine serializes each exactly once, in registration
// order — which is node order, hence deterministic.
type SharedState interface {
	SaveState(w *snapshot.Writer)
	LoadState(r *snapshot.Reader) error
}

// sourceState is implemented by traffic sources whose generation stream
// depends on mutable state (the Bernoulli injector's RNG position and packet
// ID counter). A source that doesn't implement it is assumed stateless.
type sourceState interface {
	SaveState(w *snapshot.Writer)
	LoadState(r *snapshot.Reader) error
}

// SaveState implements sourceState by delegating to the wrapped injector.
func (s *SourceAdapter) SaveState(w *snapshot.Writer) { s.B.SaveState(w) }

// LoadState implements sourceState by delegating to the wrapped injector.
func (s *SourceAdapter) LoadState(r *snapshot.Reader) error { return s.B.LoadState(r) }

// RegisterShared registers network-wide design state for serialization (see
// SharedState). Registering the same state from every node is fine — only the
// first registration sticks.
func (env *Env) RegisterShared(s SharedState) {
	for _, x := range env.engine.shared {
		if x == s {
			return
		}
	}
	env.engine.shared = append(env.engine.shared, s)
}

// linkMaskLimit bounds every port bitmask in the stream: InMask, linkMask,
// blockedMask and creditTickMask only ever carry cardinal-port bits.
const linkMaskLimit = 1 << flit.NumLinkPorts

// Snapshot serializes the engine's complete simulation state — every flit in
// flight (latches, link stages, injection deques, router buffers, the
// retransmit wheel), the credit pipelines, the source RNG position, the
// stats/energy accumulators and the optional recorder/monitor state — as one
// versioned, CRC-trailed stream.
//
// It must be called between cycles (after Step returns), where the engine's
// transient state is provably empty: output latches drained by the link
// phase, shard-staged side effects replayed at the barrier. The sharded
// backend's partition is deliberately not captured — it only decides which
// worker steps which node, never results, so a snapshot taken on either
// backend restores into either backend.
func (e *Engine) Snapshot(out io.Writer) error {
	w := snapshot.NewWriter(out)
	nodes := len(e.envs)

	w.Tag("ENGW")
	w.U64(e.cycle)
	w.U64(e.retransmits)
	w.Int(e.bufferDepth)
	w.Int(e.creditDelay)
	w.Int(nodes)

	w.Tag("SRC ")
	if ss, ok := e.source.(sourceState); ok {
		w.Bool(true)
		ss.SaveState(w)
	} else {
		w.Bool(false)
	}

	w.Tag("CRED")
	for i := range e.creditSlab {
		e.creditSlab[i].SaveState(w)
	}

	w.Tag("ENVS")
	for _, env := range e.envs {
		w.U8(env.InMask)
		for b := env.InMask; b != 0; b &= b - 1 {
			flit.Save(w, env.In[bits.TrailingZeros8(b)])
		}
		w.U8(env.blockedMask)
		w.U8(env.creditTickMask)
		w.U32(uint32(env.injection.len()))
		for i := 0; i < env.injection.len(); i++ {
			flit.Save(w, env.injection.buf[(env.injection.head+i)&(len(env.injection.buf)-1)])
		}
		w.U32(uint32(env.pendingSpecs.len()))
		for i := 0; i < env.pendingSpecs.len(); i++ {
			traffic.SaveSpec(w, env.pendingSpecs.buf[(env.pendingSpecs.head+i)&(len(env.pendingSpecs.buf)-1)])
		}
	}

	w.Tag("LINK")
	for u := range e.envs {
		w.U8(e.linkMask[u])
		for b := e.linkMask[u]; b != 0; b &= b - 1 {
			flit.Save(w, e.linkStage[u][bits.TrailingZeros8(b)])
		}
	}

	// The wheel is stored as (offset, flits) pairs in ascending offset order —
	// offset k means due at cycle+k — so the encoding is independent of the
	// wheel's current capacity and head position.
	w.Tag("WHEL")
	nonEmpty := 0
	for k := 0; k < len(e.wheel.slots); k++ {
		if len(e.wheel.slots[(e.cycle+uint64(k))&e.wheel.mask]) > 0 {
			nonEmpty++
		}
	}
	w.U32(uint32(nonEmpty))
	for k := 0; k < len(e.wheel.slots); k++ {
		slot := e.wheel.slots[(e.cycle+uint64(k))&e.wheel.mask]
		if len(slot) == 0 {
			continue
		}
		w.U64(uint64(k))
		w.U32(uint32(len(slot)))
		for _, f := range slot {
			flit.Save(w, f)
		}
	}

	w.Tag("RASM")
	for _, ra := range e.reasm {
		ra.SaveState(w)
	}

	w.Tag("RTRS")
	for _, rt := range e.routers {
		if rs, ok := rt.(RouterState); ok {
			w.Bool(true)
			rs.SaveState(w)
		} else {
			w.Bool(false)
		}
	}

	w.Tag("SHST")
	w.U32(uint32(len(e.shared)))
	for _, s := range e.shared {
		s.SaveState(w)
	}

	e.coll.SaveState(w)
	e.meter.SaveState(w)

	w.Tag("TRCE")
	if e.rec != nil {
		w.Bool(true)
		e.rec.SaveState(w)
	} else {
		w.Bool(false)
	}

	w.Tag("MONI")
	if e.mon != nil {
		w.Bool(true)
		e.mon.SaveState(w)
	} else {
		w.Bool(false)
	}

	w.Tag("DONE")
	return w.Close()
}

// RestoreEngine builds a fresh engine from cfg and factory, then overwrites
// its state from a Snapshot stream. The config must describe the same network
// shape the snapshot was taken from (mesh size, buffer depth, credit delay,
// router design); observation-layer differences — tracing on or off, shard
// count, diagnostics — are allowed, because they never influence results.
//
// On any decode or validation error the half-built engine is discarded and
// only the error returns: nothing half-restores, and the caller's own engine
// (if any) is untouched.
func RestoreEngine(data []byte, cfg Config, factory RouterFactory) (*Engine, error) {
	e, err := New(cfg, factory)
	if err != nil {
		return nil, err
	}
	if err := e.loadState(data); err != nil {
		return nil, err
	}
	return e, nil
}

// Restore overwrites this engine's state from a Snapshot stream. The engine
// must be freshly built (New) or freshly Reset — restore assumes every queue,
// latch and accumulator is empty, exactly the state a failed restore leaves
// untouched. On error the engine must be discarded or Reset before use.
func (e *Engine) Restore(data []byte) error { return e.loadState(data) }

func (e *Engine) loadState(data []byte) error {
	r, err := snapshot.NewReader(data)
	if err != nil {
		return err
	}
	nodes := len(e.envs)

	r.Expect("ENGW")
	cycle := r.U64()
	retransmits := r.U64()
	bufferDepth := r.Int()
	creditDelay := r.Int()
	snapNodes := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if snapNodes != nodes {
		return fmt.Errorf("sim: snapshot has %d nodes, engine has %d", snapNodes, nodes)
	}
	if bufferDepth != e.bufferDepth || creditDelay != e.creditDelay {
		return fmt.Errorf("sim: snapshot BufferDepth=%d CreditDelay=%d, engine has %d, %d",
			bufferDepth, creditDelay, e.bufferDepth, e.creditDelay)
	}
	e.cycle = cycle
	e.retransmits = retransmits

	r.Expect("SRC ")
	hasSrc := r.Bool()
	if err := r.Err(); err != nil {
		return err
	}
	ss, ok := e.source.(sourceState)
	if hasSrc != ok {
		return fmt.Errorf("sim: snapshot source-state presence %v, engine source %v", hasSrc, ok)
	}
	if hasSrc {
		if err := ss.LoadState(r); err != nil {
			return err
		}
	}

	r.Expect("CRED")
	for i := range e.creditSlab {
		if err := e.creditSlab[i].LoadState(r); err != nil {
			return err
		}
	}

	r.Expect("ENVS")
	for _, env := range e.envs {
		mask := r.U8()
		if r.Err() == nil && uint(mask) >= linkMaskLimit {
			return fmt.Errorf("sim: snapshot input mask %#x out of range at node %d", mask, env.Node)
		}
		for b := mask; b != 0; b &= b - 1 {
			p := bits.TrailingZeros8(b)
			f := e.pool.Get()
			if err := flit.Load(r, f, nodes); err != nil {
				return err
			}
			env.In[p] = f
		}
		env.InMask = mask
		blocked := r.U8()
		tick := r.U8()
		if r.Err() == nil && (uint(blocked) >= linkMaskLimit || uint(tick) >= linkMaskLimit) {
			return fmt.Errorf("sim: snapshot credit masks out of range at node %d", env.Node)
		}
		env.blockedMask = blocked
		env.creditTickMask = tick
		ninj := r.Len(1 << 24)
		if err := r.Err(); err != nil {
			return err
		}
		for i := 0; i < ninj; i++ {
			f := e.pool.Get()
			if err := flit.Load(r, f, nodes); err != nil {
				return err
			}
			env.injection.pushBack(f)
		}
		nspec := r.Len(1 << 24)
		if err := r.Err(); err != nil {
			return err
		}
		for i := 0; i < nspec; i++ {
			spec, err := traffic.LoadSpec(r, nodes)
			if err != nil {
				return err
			}
			env.pendingSpecs.pushBack(spec)
		}
	}

	r.Expect("LINK")
	for u := range e.envs {
		mask := r.U8()
		if r.Err() == nil && uint(mask) >= linkMaskLimit {
			return fmt.Errorf("sim: snapshot link mask %#x out of range at node %d", mask, u)
		}
		for b := mask; b != 0; b &= b - 1 {
			p := bits.TrailingZeros8(b)
			f := e.pool.Get()
			if err := flit.Load(r, f, nodes); err != nil {
				return err
			}
			e.linkStage[u][p] = f
		}
		e.linkMask[u] = mask
	}

	r.Expect("WHEL")
	nslots := r.Len(1 << 20)
	if err := r.Err(); err != nil {
		return err
	}
	prevOffset := int64(-1)
	for s := 0; s < nslots; s++ {
		k := r.U64()
		cnt := r.Len(1 << 20)
		if err := r.Err(); err != nil {
			return err
		}
		if int64(k) <= prevOffset {
			return fmt.Errorf("sim: snapshot wheel offsets not ascending (%d after %d)", k, prevOffset)
		}
		prevOffset = int64(k)
		if cnt == 0 {
			return fmt.Errorf("sim: snapshot wheel slot at offset %d is empty", k)
		}
		for i := 0; i < cnt; i++ {
			f := e.pool.Get()
			if err := flit.Load(r, f, nodes); err != nil {
				return err
			}
			e.wheel.schedule(e.cycle, e.cycle+k, f)
		}
	}

	r.Expect("RASM")
	for _, ra := range e.reasm {
		if err := ra.LoadState(r, nodes); err != nil {
			return err
		}
	}

	r.Expect("RTRS")
	for i, rt := range e.routers {
		has := r.Bool()
		if err := r.Err(); err != nil {
			return err
		}
		rs, stateful := rt.(RouterState)
		if has != stateful {
			return fmt.Errorf("sim: snapshot router-state presence %v at node %d, engine router %v (different design?)", has, i, stateful)
		}
		if has {
			if err := rs.LoadState(r, e.pool, nodes); err != nil {
				return err
			}
		}
	}

	r.Expect("SHST")
	nsh := r.Len(1 << 16)
	if err := r.Err(); err != nil {
		return err
	}
	if nsh != len(e.shared) {
		return fmt.Errorf("sim: snapshot has %d shared states, engine has %d", nsh, len(e.shared))
	}
	for _, s := range e.shared {
		if err := s.LoadState(r); err != nil {
			return err
		}
	}

	if err := e.coll.LoadState(r); err != nil {
		return err
	}
	if err := e.meter.LoadState(r); err != nil {
		return err
	}

	r.Expect("TRCE")
	hasRec := r.Bool()
	if err := r.Err(); err != nil {
		return err
	}
	if hasRec {
		// A nil destination decodes and discards — restoring with tracing off
		// (or rewinding with a different trace config) is legal.
		if err := events.LoadState(r, e.rec); err != nil {
			return err
		}
	}

	r.Expect("MONI")
	hasMon := r.Bool()
	if err := r.Err(); err != nil {
		return err
	}
	if hasMon {
		if err := diag.LoadState(r, e.mon); err != nil {
			return err
		}
	}

	r.Expect("DONE")
	return r.Close()
}
