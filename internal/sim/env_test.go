package sim

import (
	"testing"

	"dxbar/internal/energy"
	"dxbar/internal/flit"
	"dxbar/internal/stats"
	"dxbar/internal/topology"
	"dxbar/internal/traffic"
)

// envFixture builds an engine with inert routers for Env-level tests.
func envFixture(t *testing.T, depth int) *Engine {
	t.Helper()
	mesh := topology.MustMesh(4, 4)
	coll := stats.NewCollector(mesh.Nodes(), 0, 1000)
	eng, err := New(Config{Mesh: mesh, Meter: energy.NewMeter(), Stats: coll, BufferDepth: depth},
		func(env *Env) Router {
			return routerFunc(func(cycle uint64) {
				for p := flit.North; p <= flit.West; p++ {
					env.In[p] = nil
				}
			})
		})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestEnvAccessors(t *testing.T) {
	eng := envFixture(t, 4)
	env := eng.Env(5)
	if env.Mesh() != eng.Mesh() {
		t.Error("Mesh accessor mismatch")
	}
	if env.Meter() == nil || env.Stats() == nil {
		t.Error("Meter/Stats accessors nil")
	}
	if eng.Router(5) == nil {
		t.Error("Router accessor nil")
	}
	if !env.HasLink(flit.Local) {
		t.Error("Local always exists")
	}
	if env.HasLink(flit.Invalid) {
		t.Error("Invalid port must not exist")
	}
	if !env.OutputFree(flit.East) {
		t.Error("fresh output must be free")
	}
	if env.DownstreamCredits(flit.Local) != nil {
		t.Error("Local has no credits")
	}
}

func TestEnvCanSendEdges(t *testing.T) {
	eng := envFixture(t, 1)
	corner := eng.Env(0) // NW corner: no North/West links
	if corner.CanSend(flit.North) || corner.CanSend(flit.West) {
		t.Error("edge ports must not be sendable")
	}
	if !corner.CanSend(flit.East) || !corner.CanSend(flit.Local) {
		t.Error("existing ports must be sendable")
	}
	// Exhaust the single credit: East becomes unsendable, Local stays.
	corner.Send(flit.East, &flit.Flit{ID: 1, Src: 0, Dst: 1})
	if corner.CanSend(flit.East) {
		t.Error("driven output must not be sendable")
	}
	if !corner.CanSend(flit.Local) {
		t.Error("Local must stay sendable")
	}
}

func TestEnvSendPanics(t *testing.T) {
	eng := envFixture(t, 4)
	env := eng.Env(0)
	t.Run("missing port", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("sending through a missing port must panic")
			}
		}()
		env.Send(flit.North, &flit.Flit{ID: 1})
	})
	t.Run("double drive", func(t *testing.T) {
		env.Send(flit.East, &flit.Flit{ID: 1, Src: 0, Dst: 1})
		defer func() {
			if recover() == nil {
				t.Error("double-driving an output must panic")
			}
		}()
		env.Send(flit.East, &flit.Flit{ID: 2, Src: 0, Dst: 1})
	})
}

func TestConsumeInjectionEmptyPanics(t *testing.T) {
	eng := envFixture(t, 4)
	defer func() {
		if recover() == nil {
			t.Error("consuming an empty injection queue must panic")
		}
	}()
	eng.Env(0).ConsumeInjection(0)
}

func TestScheduleRetransmitZeroDelay(t *testing.T) {
	eng := envFixture(t, 4)
	f := &flit.Flit{ID: 1, Src: 3, Dst: 7}
	eng.ScheduleRetransmit(f, 0) // clamps to the next cycle
	eng.Step()                   // cycle 0: event scheduled for cycle 1
	eng.Step()                   // cycle 1: event delivered at cycle start
	if eng.Env(3).InjectionHead() != f {
		t.Error("zero-delay retransmit must re-enqueue next cycle")
	}
	if f.Retransmits != 1 {
		t.Errorf("retransmit counter = %d, want 1", f.Retransmits)
	}
}

// TestScheduleRetransmitDelays pins down delivery timing for delay 1 and a
// general delay n: a flit scheduled at cycle c with delay d reappears at the
// head of its source queue at the start of cycle c+d, not a cycle earlier.
// The 100-cycle case also forces the event wheel to grow past its initial
// capacity mid-run.
func TestScheduleRetransmitDelays(t *testing.T) {
	for _, delay := range []uint64{1, 5, 100} {
		eng := envFixture(t, 4)
		f := &flit.Flit{ID: 2, Src: 5, Dst: 9}
		eng.ScheduleRetransmit(f, delay)
		for c := uint64(0); c < delay; c++ {
			if eng.Env(5).InjectionHead() == f {
				t.Fatalf("delay %d: flit visible at cycle %d, too early", delay, c)
			}
			eng.Step()
		}
		eng.Step() // the cycle that starts at eng.Cycle() == delay delivers it
		if eng.Env(5).InjectionHead() != f {
			t.Errorf("delay %d: flit not re-enqueued at cycle %d", delay, delay)
		}
		if f.Retransmits != 1 {
			t.Errorf("delay %d: retransmit counter = %d, want 1", delay, f.Retransmits)
		}
	}
}

func TestSourceAdapter(t *testing.T) {
	mesh := topology.MustMesh(4, 4)
	pat, _ := traffic.New("NB", mesh)
	bern, _ := traffic.NewBernoulli(mesh, pat, 1.0, 1, 1)
	src := &SourceAdapter{B: bern}
	got := 0
	for n := 0; n < 16; n++ {
		got += len(src.Generate(n, 0))
	}
	if got != 16 {
		t.Errorf("load 1.0 must generate on every node, got %d", got)
	}
}
