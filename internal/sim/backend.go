package sim

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"dxbar/internal/energy"
	"dxbar/internal/flit"
	"dxbar/internal/stats"
	"dxbar/internal/topology"
)

// backend executes the router phase (SA/ST for every node) of one cycle.
// Two implementations exist behind this interface: the sequential backend
// steps every router on the calling goroutine; the sharded backend fans the
// mesh's tiles out over worker goroutines and reconciles their staged side
// effects at a barrier. Both leave the engine in the exact same state after
// every cycle — the sharded engine's determinism contract is bit-identity
// with the sequential one.
type backend interface {
	// routerPhase steps every router for cycle c and applies all router
	// side effects (latches, credits, meter, stats, events, retransmits)
	// to the engine's master state before returning.
	routerPhase(c uint64)
	// shardCount reports the number of parallel shards (1 for sequential).
	shardCount() int
	// profile returns the cumulative per-shard router-phase and barrier-wait
	// times (nil for the sequential backend). The returned slices are live —
	// callers on the coordinating goroutine read them between cycles.
	profile() (busy, wait []time.Duration)
	// resetProfile zeroes the profiler accumulators (Engine.Reset — a reused
	// engine must not leak the previous run's times into the next one).
	resetProfile()
}

// DefaultRebalanceInterval is the default number of cycles between dynamic
// shard-rebalancing checks (Config.RebalanceInterval = 0). Long enough that
// each window's busy times average over thousands of router phases, short
// enough that a shifting hotspot is chased within a fraction of a typical
// measurement run.
const DefaultRebalanceInterval = 1024

// rebalanceThreshold is the minimum window imbalance ratio (max/mean
// per-shard router-phase time) that triggers a boundary migration. Below it
// the partition is considered balanced: migrating a row or column has a
// rewiring cost and jitters the profile, so the engine only moves work when
// at least one shard is clearly hotter than the mean.
const rebalanceThreshold = 1.15

// resolveRebalanceInterval maps Config.RebalanceInterval onto the backend's
// check period: 0 = DefaultRebalanceInterval, negative = disabled.
func resolveRebalanceInterval(n int) uint64 {
	switch {
	case n == 0:
		return DefaultRebalanceInterval
	case n < 0:
		return 0
	}
	return uint64(n)
}

// ResolveShards maps a Config.Shards request onto an effective shard count
// for a width×height mesh: 0 or 1 selects the sequential engine, a negative
// value auto-sizes to GOMAXPROCS, and any larger request is resolved to the
// tile count of the boundary-minimizing 2D grid (topology.Grid2D) — the
// largest feasible factorization at most the request, where every tile owns
// at least one column and one row.
func ResolveShards(n, width, height int) int {
	if n == 0 || n == 1 {
		return 1
	}
	if n < 0 {
		n = runtime.GOMAXPROCS(0)
	}
	gx, gy := topology.Grid2D(width, height, n)
	return gx * gy
}

// seqBackend is the single-threaded router phase: every router steps on the
// calling goroutine in node order, writing directly to the engine's master
// meter, collector and recorder.
type seqBackend struct {
	e *Engine
}

func (b seqBackend) shardCount() int { return 1 }

func (b seqBackend) profile() (busy, wait []time.Duration) { return nil, nil }
func (b seqBackend) resetProfile()                         {}

func (b seqBackend) routerPhase(c uint64) {
	for i, r := range b.e.routers {
		r.Step(c)
		checkConsumed(b.e.envs[i], i, c)
	}
}

// checkConsumed panics if a router left an input latch occupied — the
// Router contract requires every latched flit to be consumed during Step.
// A router that consumes its inputs through InMask clears the mask, making
// the check one byte test; a router that scans In directly leaves the mask
// set and pays the full latch scan here (the mask is reset either way).
func checkConsumed(env *Env, node int, c uint64) {
	if env.InMask == 0 {
		return
	}
	for p := 0; p < flit.NumLinkPorts; p++ {
		if env.In[p] != nil {
			panic(fmt.Sprintf("sim: router %d left input %s unconsumed at cycle %d: %v",
				node, flit.Port(p), c, env.In[p]))
		}
	}
	env.InMask = 0
}

// stagedRetx is one retransmission a router scheduled during the parallel
// router phase, parked per-env until the barrier inserts it into the
// engine's event wheel in node order (the wheel's slot order is delivery
// order at the retransmit cycle, so insertion order must match the
// sequential engine's).
// stagedCredit is one deferred ReturnCredit call (sharded mode).
type stagedCredit struct {
	env  *Env
	port flit.Port
}

type stagedRetx struct {
	f     *flit.Flit
	delay uint64
}

// shard owns one tile of the mesh inside the sharded backend: the tile's
// node list plus the scratch state its worker may write during the router
// phase without touching another shard's memory. Everything staged here is
// either commutative (meter and collector counters) or replayed in node
// order at the barrier (events, retransmits), which is what preserves
// bit-identity with the sequential engine.
type shard struct {
	id int
	// nodes lists the tile's node indices in ascending order. Rebalancing
	// rewrites it between cycles; capacity is preallocated to the whole mesh
	// so migrations never allocate.
	nodes []int

	// meter and coll are the shard-local scratch the tile's routers write
	// through their Env; the barrier absorbs both into the master.
	meter *energy.Meter
	coll  *stats.Collector

	// creditReturns stages upstream credit returns. A returned credit
	// enters the counter's delay pipeline and is invisible until the
	// engine ticks the pipelines after the link phase, so applying returns
	// at the barrier instead of mid-phase is observationally identical —
	// staging exists to keep one shard from writing a neighbour shard's
	// counter concurrently.
	creditReturns []stagedCredit

	// retx counts retransmissions staged across the shard's envs this
	// cycle, so the barrier can skip the env scan entirely in the common
	// case of none.
	retx int
}

// shardedBackend runs the router phase tile-parallel over a 2D tile grid.
// Each cycle it spawns one goroutine per extra shard (shard 0 runs inline on
// the caller), barriers on a WaitGroup, then merges the staged side effects:
//
//  1. per-env event stages drain into the master recorder, and staged
//     retransmissions enter the event wheel, both in ascending node order —
//     exactly the order the sequential engine would have produced;
//  2. staged credit returns are applied (order-insensitive: returns ride
//     the credit delay pipeline and only become visible at Tick);
//  3. shard scratch meters and collectors are absorbed into the masters
//     (order-insensitive: pure counter sums).
//
// Because every cross-shard effect is staged and replayed in a
// partition-independent order, the *shape* of the partition never leaks into
// results — which is what makes dynamic rebalancing safe: the backend may
// migrate boundary rows and columns between tiles at any barrier and stay
// bit-identical to the sequential engine.
//
// Goroutine spawn per cycle costs well under a microsecond against router
// phases that run hundreds of microseconds on the large meshes sharding
// targets, reuses pooled goroutine stacks (no steady-state allocation), and
// leaves the engine with no background goroutines to manage — an idle or
// abandoned engine holds no resources beyond its memory.
type shardedBackend struct {
	e      *Engine
	shards []*shard
	wg     sync.WaitGroup

	// Execution profiler. Each worker times its own router phase and writes
	// only its own slot (busy accumulates, finish is per-cycle scratch); the
	// coordinator folds finish times into the barrier-wait accumulators after
	// wg.Wait, whose happens-before edge makes the cross-goroutine reads
	// safe. The profiler observes the phase without feeding any simulation
	// state, so it cannot perturb bit-identity, and its cost — two time.Now
	// calls per shard per cycle — is noise against router phases that run for
	// tens of microseconds; it is therefore always on. It doubles as the
	// input signal for dynamic rebalancing below.
	busy   []time.Duration
	wait   []time.Duration
	finish []time.Time

	// cycle carries the current cycle to the workers; it is written before
	// the spawns (a happens-before edge) and read-only during the phase.
	cycle uint64
	// workers[i] runs shard i+1 for the current cycle. They are pre-bound
	// zero-argument closures because `go f()` on one spawns without heap
	// allocation, whereas a go statement with arguments allocates a wrapper
	// closure every call — which would break the engine's zero-alloc
	// steady state.
	workers []func()

	// Partition state. The mesh is divided into gy horizontal bands of rows;
	// band j spans rows [ycuts[j], ycuts[j+1]) and is divided into gx column
	// ranges of its own: tile (i, j) — shard j*gx+i — spans columns
	// [xcuts[j][i], xcuts[j][i+1]). Bands keep private x-cuts so column
	// migrations in one band never disturb another; every tile stays a
	// rectangle, so TileOf-style reasoning (and the boundary-link accounting
	// of topology.BoundaryLinks) holds throughout a run.
	gx, gy int
	ycuts  []int
	xcuts  [][]int
	// nodeCounts mirrors len(shards[i].nodes) for telemetry (published as the
	// dxbar_shard_nodes gauge without touching shard internals).
	nodeCounts []int

	// Dynamic rebalancing: every interval cycles the backend compares the
	// shards' router-phase times over the window just ended and, when the
	// hottest shard exceeds rebalanceThreshold times the mean, migrates one
	// boundary row or column from it toward its coolest neighbour.
	// interval <= 0 disables the checks (Engine.RebalanceShards still forces
	// passes manually).
	interval   uint64
	lastBusy   []time.Duration
	winBusy    []time.Duration
	rebalances uint64
	migrated   uint64
}

func newShardedBackend(e *Engine, n, rebalanceInterval int) *shardedBackend {
	m := e.mesh
	gx, gy := m.Grid2D(n)
	count := gx * gy
	b := &shardedBackend{
		e:          e,
		shards:     make([]*shard, count),
		busy:       make([]time.Duration, count),
		wait:       make([]time.Duration, count),
		finish:     make([]time.Time, count),
		gx:         gx,
		gy:         gy,
		ycuts:      topology.SplitEven(m.Height, gy),
		xcuts:      make([][]int, gy),
		nodeCounts: make([]int, count),
		lastBusy:   make([]time.Duration, count),
		winBusy:    make([]time.Duration, count),
	}
	b.interval = resolveRebalanceInterval(rebalanceInterval)
	for j := 0; j < gy; j++ {
		b.xcuts[j] = topology.SplitEven(m.Width, gx)
	}
	for i := range b.shards {
		b.shards[i] = &shard{id: i, nodes: make([]int, 0, m.Nodes())}
	}
	for j := 0; j < gy; j++ {
		for i := 0; i < gx; i++ {
			b.rebuildShard(i, j)
		}
	}
	for i := 1; i < len(b.shards); i++ {
		s := b.shards[i]
		b.workers = append(b.workers, func() {
			b.runShard(s, b.cycle)
			b.wg.Done()
		})
	}
	return b
}

// rebuildShard regenerates tile (i, j)'s node list from its rectangle and
// rewires the migrated envs to the owning shard's scratch collectors. It
// never allocates: node capacity is the whole mesh, and the env stages /
// retransmit buffers are per-env, so they follow the node wherever it goes.
func (b *shardedBackend) rebuildShard(i, j int) {
	s := b.shards[j*b.gx+i]
	w := b.e.mesh.Width
	s.nodes = s.nodes[:0]
	for y := b.ycuts[j]; y < b.ycuts[j+1]; y++ {
		for x := b.xcuts[j][i]; x < b.xcuts[j][i+1]; x++ {
			n := y*w + x
			s.nodes = append(s.nodes, n)
			// At construction the scratch collectors do not exist yet —
			// wireCollectors runs right after and wires every env. During a
			// mid-run migration they do, and only the env's ownership
			// changes.
			if s.meter != nil {
				env := b.e.envs[n]
				env.shard = s
				env.meter = s.meter
				env.coll = s.coll
			}
		}
	}
	b.nodeCounts[s.id] = len(s.nodes)
}

func (b *shardedBackend) shardCount() int { return len(b.shards) }

func (b *shardedBackend) routerPhase(c uint64) {
	b.cycle = c
	b.wg.Add(len(b.workers))
	for _, w := range b.workers {
		go w()
	}
	b.runShard(b.shards[0], c)
	b.wg.Wait()
	b.settleWaits()
	b.merge(c)
	if b.interval > 0 && (c+1)%b.interval == 0 {
		b.rebalance(false)
	}
}

func (b *shardedBackend) runShard(s *shard, c uint64) {
	e := b.e
	start := time.Now()
	for _, n := range s.nodes {
		e.routers[n].Step(c)
		checkConsumed(e.envs[n], n, c)
	}
	end := time.Now()
	b.busy[s.id] += end.Sub(start)
	b.finish[s.id] = end
}

// settleWaits charges each shard the time it spent idle at the barrier this
// cycle: the gap between its own finish and the slowest shard's. The slowest
// shard's wait is zero by construction — a persistently zero-wait shard is
// the bottleneck tile.
func (b *shardedBackend) settleWaits() {
	last := b.finish[0]
	for _, t := range b.finish[1:] {
		if t.After(last) {
			last = t
		}
	}
	for i, t := range b.finish {
		b.wait[i] += last.Sub(t)
	}
}

func (b *shardedBackend) profile() (busy, wait []time.Duration) { return b.busy, b.wait }

func (b *shardedBackend) resetProfile() {
	for i := range b.busy {
		b.busy[i] = 0
		b.wait[i] = 0
		b.lastBusy[i] = 0
	}
	b.rebalances = 0
	b.migrated = 0
}

// merge applies every staged side effect of the finished router phase to
// the engine's master state. It runs on the coordinating goroutine after
// the barrier, so it needs no synchronization beyond the WaitGroup's
// happens-before edge.
func (b *shardedBackend) merge(c uint64) {
	e := b.e

	retx := 0
	for _, s := range b.shards {
		retx += s.retx
		s.retx = 0
	}
	e.retransmits += uint64(retx)
	// Replay per-env stages in ascending node order. The env scan is O(N),
	// so skip it when there is nothing to replay (tracing off and no
	// retransmissions scheduled — the overwhelmingly common cycle).
	if e.rec != nil || retx > 0 {
		for _, env := range e.envs {
			env.rec.DrainTo(e.rec)
			for _, rx := range env.pendingRetx {
				e.wheel.schedule(c, c+rx.delay, rx.f)
			}
			env.pendingRetx = env.pendingRetx[:0]
		}
	}

	for _, s := range b.shards {
		for _, cr := range s.creditReturns {
			cr.env.applyReturn(cr.port)
		}
		s.creditReturns = s.creditReturns[:0]
		e.meter.Absorb(s.meter)
		e.coll.AbsorbRouterPhase(s.coll)
	}
}

// Migration kinds of one rebalancing move, ordered by preference when a
// forced pass finds no profitable candidate.
const (
	moveColWest  = iota // hot tile's westmost column -> western neighbour
	moveColEast         // hot tile's eastmost column -> eastern neighbour
	moveRowNorth        // hot band's top row -> band above (all its tiles)
	moveRowSouth        // hot band's bottom row -> band below
	moveNone
)

// rebalance runs one rebalancing pass: it reads the per-shard router-phase
// profile over the window since the last pass and migrates one boundary
// column (between the hottest tile and its in-band neighbour) or one
// boundary row (between the hottest tile's band and an adjacent band) from
// hot to cold. It runs on the coordinating goroutine between cycles, so the
// partition is stable for the whole of every router phase. force skips the
// imbalance threshold and, when no candidate is profitable, executes the
// first feasible move anyway (tests force deterministic migrations with it).
// It reports whether a migration happened. Bit-identity is unaffected either
// way: the partition only decides which worker steps which node, never what
// the step computes.
func (b *shardedBackend) rebalance(force bool) bool {
	var total, max time.Duration
	hot := 0
	for i, cum := range b.busy {
		w := cum - b.lastBusy[i]
		b.lastBusy[i] = cum
		b.winBusy[i] = w
		total += w
		if w > b.winBusy[hot] {
			hot = i
		}
	}
	max = b.winBusy[hot]
	if !force && (total == 0 || float64(max)*float64(len(b.shards)) <= rebalanceThreshold*float64(total)) {
		return false
	}

	// Per-node busy rates decide where work should flow. A column move
	// helps when the hot tile's rate exceeds its in-band neighbour's; a row
	// move compares whole bands, because shifting a y-cut migrates a full
	// mesh row across every tile pair of the two bands.
	rate := func(id int) float64 {
		if b.nodeCounts[id] == 0 {
			return 0
		}
		return float64(b.winBusy[id]) / float64(b.nodeCounts[id])
	}
	bandRate := func(j int) float64 {
		var busy time.Duration
		nodes := 0
		for i := 0; i < b.gx; i++ {
			busy += b.winBusy[j*b.gx+i]
			nodes += b.nodeCounts[j*b.gx+i]
		}
		if nodes == 0 {
			return 0
		}
		return float64(busy) / float64(nodes)
	}

	hi, hj := hot%b.gx, hot/b.gx
	tileWidth := b.xcuts[hj][hi+1] - b.xcuts[hj][hi]
	bandHeight := b.ycuts[hj+1] - b.ycuts[hj]

	// Candidate moves, scored by the rate gap work would flow down. A forced
	// pass keeps the first feasible move even at zero gain (kind order is the
	// tie-break); an unforced pass requires a strictly positive gap.
	best, bestGain := moveNone, 0.0
	consider := func(kind int, gain float64) {
		if gain > bestGain || (force && best == moveNone) {
			best, bestGain = kind, gain
		}
	}
	if hi > 0 && tileWidth > 1 {
		consider(moveColWest, rate(hot)-rate(hot-1))
	}
	if hi < b.gx-1 && tileWidth > 1 {
		consider(moveColEast, rate(hot)-rate(hot+1))
	}
	if hj > 0 && bandHeight > 1 {
		consider(moveRowNorth, bandRate(hj)-bandRate(hj-1))
	}
	if hj < b.gy-1 && bandHeight > 1 {
		consider(moveRowSouth, bandRate(hj)-bandRate(hj+1))
	}
	if best == moveNone || (!force && bestGain <= 0) {
		return false
	}

	switch best {
	case moveColWest:
		b.xcuts[hj][hi]++
		b.migrated += uint64(bandHeight)
		b.rebuildShard(hi-1, hj)
		b.rebuildShard(hi, hj)
	case moveColEast:
		b.xcuts[hj][hi+1]--
		b.migrated += uint64(bandHeight)
		b.rebuildShard(hi, hj)
		b.rebuildShard(hi+1, hj)
	case moveRowNorth:
		b.ycuts[hj]++
		b.migrated += uint64(b.e.mesh.Width)
		for i := 0; i < b.gx; i++ {
			b.rebuildShard(i, hj-1)
			b.rebuildShard(i, hj)
		}
	case moveRowSouth:
		b.ycuts[hj+1]--
		b.migrated += uint64(b.e.mesh.Width)
		for i := 0; i < b.gx; i++ {
			b.rebuildShard(i, hj)
			b.rebuildShard(i, hj+1)
		}
	}
	b.rebalances++
	return true
}
