package sim

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"dxbar/internal/energy"
	"dxbar/internal/flit"
	"dxbar/internal/stats"
)

// backend executes the router phase (SA/ST for every node) of one cycle.
// Two implementations exist behind this interface: the sequential backend
// steps every router on the calling goroutine; the sharded backend fans the
// mesh's tiles out over worker goroutines and reconciles their staged side
// effects at a barrier. Both leave the engine in the exact same state after
// every cycle — the sharded engine's determinism contract is bit-identity
// with the sequential one.
type backend interface {
	// routerPhase steps every router for cycle c and applies all router
	// side effects (latches, credits, meter, stats, events, retransmits)
	// to the engine's master state before returning.
	routerPhase(c uint64)
	// shardCount reports the number of parallel shards (1 for sequential).
	shardCount() int
	// profile returns the cumulative per-shard router-phase and barrier-wait
	// times (nil for the sequential backend). The returned slices are live —
	// callers on the coordinating goroutine read them between cycles.
	profile() (busy, wait []time.Duration)
	// resetProfile zeroes the profiler accumulators (Engine.Reset — a reused
	// engine must not leak the previous run's times into the next one).
	resetProfile()
}

// ResolveShards maps a Config.Shards request onto an effective shard count
// for a mesh of the given width: 0 or 1 selects the sequential engine, a
// negative value auto-sizes to GOMAXPROCS, and any result is clamped to the
// mesh width (a column-strip tile must own at least one column).
func ResolveShards(n, width int) int {
	if n == 0 || n == 1 {
		return 1
	}
	if n < 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > width {
		n = width
	}
	if n < 1 {
		n = 1
	}
	return n
}

// seqBackend is the single-threaded router phase: every router steps on the
// calling goroutine in node order, writing directly to the engine's master
// meter, collector and recorder.
type seqBackend struct {
	e *Engine
}

func (b seqBackend) shardCount() int { return 1 }

func (b seqBackend) profile() (busy, wait []time.Duration) { return nil, nil }
func (b seqBackend) resetProfile()                         {}

func (b seqBackend) routerPhase(c uint64) {
	for i, r := range b.e.routers {
		r.Step(c)
		checkConsumed(b.e.envs[i], i, c)
	}
}

// checkConsumed panics if a router left an input latch occupied — the
// Router contract requires every latched flit to be consumed during Step.
// A router that consumes its inputs through InMask clears the mask, making
// the check one byte test; a router that scans In directly leaves the mask
// set and pays the full latch scan here (the mask is reset either way).
func checkConsumed(env *Env, node int, c uint64) {
	if env.InMask == 0 {
		return
	}
	for p := 0; p < flit.NumLinkPorts; p++ {
		if env.In[p] != nil {
			panic(fmt.Sprintf("sim: router %d left input %s unconsumed at cycle %d: %v",
				node, flit.Port(p), c, env.In[p]))
		}
	}
	env.InMask = 0
}

// stagedRetx is one retransmission a router scheduled during the parallel
// router phase, parked per-env until the barrier inserts it into the
// engine's event wheel in node order (the wheel's slot order is delivery
// order at the retransmit cycle, so insertion order must match the
// sequential engine's).
// stagedCredit is one deferred ReturnCredit call (sharded mode).
type stagedCredit struct {
	env  *Env
	port flit.Port
}

type stagedRetx struct {
	f     *flit.Flit
	delay uint64
}

// shard owns one tile of the mesh inside the sharded backend: the tile's
// node list plus the scratch state its worker may write during the router
// phase without touching another shard's memory. Everything staged here is
// either commutative (meter and collector counters) or replayed in node
// order at the barrier (events, retransmits), which is what preserves
// bit-identity with the sequential engine.
type shard struct {
	id    int
	nodes []int // ascending node indices of the tile

	// meter and coll are the shard-local scratch the tile's routers write
	// through their Env; the barrier absorbs both into the master.
	meter *energy.Meter
	coll  *stats.Collector

	// creditReturns stages upstream credit returns. A returned credit
	// enters the counter's delay pipeline and is invisible until the
	// engine ticks the pipelines after the link phase, so applying returns
	// at the barrier instead of mid-phase is observationally identical —
	// staging exists to keep one shard from writing a neighbour shard's
	// counter concurrently.
	creditReturns []stagedCredit

	// retx counts retransmissions staged across the shard's envs this
	// cycle, so the barrier can skip the env scan entirely in the common
	// case of none.
	retx int
}

// shardedBackend runs the router phase tile-parallel. Each cycle it spawns
// one goroutine per extra shard (shard 0 runs inline on the caller),
// barriers on a WaitGroup, then merges the staged side effects:
//
//  1. per-env event stages drain into the master recorder, and staged
//     retransmissions enter the event wheel, both in ascending node order —
//     exactly the order the sequential engine would have produced;
//  2. staged credit returns are applied (order-insensitive: returns ride
//     the credit delay pipeline and only become visible at Tick);
//  3. shard scratch meters and collectors are absorbed into the masters
//     (order-insensitive: pure counter sums).
//
// Goroutine spawn per cycle costs well under a microsecond against router
// phases that run hundreds of microseconds on the large meshes sharding
// targets, reuses pooled goroutine stacks (no steady-state allocation), and
// leaves the engine with no background goroutines to manage — an idle or
// abandoned engine holds no resources beyond its memory.
type shardedBackend struct {
	e      *Engine
	shards []*shard
	wg     sync.WaitGroup

	// Execution profiler. Each worker times its own router phase and writes
	// only its own slot (busy accumulates, finish is per-cycle scratch); the
	// coordinator folds finish times into the barrier-wait accumulators after
	// wg.Wait, whose happens-before edge makes the cross-goroutine reads
	// safe. The profiler observes the phase without feeding any simulation
	// state, so it cannot perturb bit-identity, and its cost — two time.Now
	// calls per shard per cycle — is noise against router phases that run for
	// tens of microseconds; it is therefore always on.
	busy   []time.Duration
	wait   []time.Duration
	finish []time.Time

	// cycle carries the current cycle to the workers; it is written before
	// the spawns (a happens-before edge) and read-only during the phase.
	cycle uint64
	// workers[i] runs shard i+1 for the current cycle. They are pre-bound
	// zero-argument closures because `go f()` on one spawns without heap
	// allocation, whereas a go statement with arguments allocates a wrapper
	// closure every call — which would break the engine's zero-alloc
	// steady state.
	workers []func()
}

func newShardedBackend(e *Engine, n int) *shardedBackend {
	tiles := e.mesh.Tiles(n)
	b := &shardedBackend{
		e:      e,
		shards: make([]*shard, len(tiles)),
		busy:   make([]time.Duration, len(tiles)),
		wait:   make([]time.Duration, len(tiles)),
		finish: make([]time.Time, len(tiles)),
	}
	for i, t := range tiles {
		b.shards[i] = &shard{id: i, nodes: t.Nodes}
	}
	for i := 1; i < len(b.shards); i++ {
		s := b.shards[i]
		b.workers = append(b.workers, func() {
			b.runShard(s, b.cycle)
			b.wg.Done()
		})
	}
	return b
}

func (b *shardedBackend) shardCount() int { return len(b.shards) }

func (b *shardedBackend) routerPhase(c uint64) {
	b.cycle = c
	b.wg.Add(len(b.workers))
	for _, w := range b.workers {
		go w()
	}
	b.runShard(b.shards[0], c)
	b.wg.Wait()
	b.settleWaits()
	b.merge(c)
}

func (b *shardedBackend) runShard(s *shard, c uint64) {
	e := b.e
	start := time.Now()
	for _, n := range s.nodes {
		e.routers[n].Step(c)
		checkConsumed(e.envs[n], n, c)
	}
	end := time.Now()
	b.busy[s.id] += end.Sub(start)
	b.finish[s.id] = end
}

// settleWaits charges each shard the time it spent idle at the barrier this
// cycle: the gap between its own finish and the slowest shard's. The slowest
// shard's wait is zero by construction — a persistently zero-wait shard is
// the bottleneck tile.
func (b *shardedBackend) settleWaits() {
	last := b.finish[0]
	for _, t := range b.finish[1:] {
		if t.After(last) {
			last = t
		}
	}
	for i, t := range b.finish {
		b.wait[i] += last.Sub(t)
	}
}

func (b *shardedBackend) profile() (busy, wait []time.Duration) { return b.busy, b.wait }

func (b *shardedBackend) resetProfile() {
	for i := range b.busy {
		b.busy[i] = 0
		b.wait[i] = 0
	}
}

// merge applies every staged side effect of the finished router phase to
// the engine's master state. It runs on the coordinating goroutine after
// the barrier, so it needs no synchronization beyond the WaitGroup's
// happens-before edge.
func (b *shardedBackend) merge(c uint64) {
	e := b.e

	retx := 0
	for _, s := range b.shards {
		retx += s.retx
		s.retx = 0
	}
	e.retransmits += uint64(retx)
	// Replay per-env stages in ascending node order. The env scan is O(N),
	// so skip it when there is nothing to replay (tracing off and no
	// retransmissions scheduled — the overwhelmingly common cycle).
	if e.rec != nil || retx > 0 {
		for _, env := range e.envs {
			env.rec.DrainTo(e.rec)
			for _, rx := range env.pendingRetx {
				e.wheel.schedule(c, c+rx.delay, rx.f)
			}
			env.pendingRetx = env.pendingRetx[:0]
		}
	}

	for _, s := range b.shards {
		for _, cr := range s.creditReturns {
			cr.env.applyReturn(cr.port)
		}
		s.creditReturns = s.creditReturns[:0]
		e.meter.Absorb(s.meter)
		e.coll.AbsorbRouterPhase(s.coll)
	}
}
