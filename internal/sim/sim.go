// Package sim is the cycle-accurate network simulation engine. It owns the
// global clock, the inter-router links (with the paper's 2-stage ST→LT hop
// timing), the per-node injection queues and reassembly buffers, credit
// signalling, the energy meter and the statistics collector. Router designs
// plug in through the Router interface and see the network exclusively
// through their Env.
//
// # Timing model
//
// Each cycle has two phases. In the router phase every router consumes the
// flits latched on its input ports and fills its output latches (its SA/ST
// pipeline stage). In the link phase the engine advances every link
// pipeline: a flit written to an output latch at cycle c spends cycle c+1 on
// the link (LT) and is visible to the downstream router at cycle c+2 —
// matching the paper's 2-stage per-hop pipeline for DXbar / Flit-Bless /
// SCARAB (Fig. 2d). The 3-stage baseline pipeline adds one in-router
// eligibility cycle (its RC stage) inside the router implementation.
//
// Routers never observe same-cycle state of other routers; credits return
// through a delayed pipeline (buffer.Credits) that models the reverse wires.
package sim

import (
	"fmt"
	"math/bits"
	"time"

	"dxbar/internal/buffer"
	"dxbar/internal/diag"
	"dxbar/internal/energy"
	"dxbar/internal/events"
	"dxbar/internal/flit"
	"dxbar/internal/metrics"
	"dxbar/internal/stats"
	"dxbar/internal/topology"
	"dxbar/internal/traffic"
)

// Router is one switching node. Step must consume every flit present on the
// Env's In latches (buffering, switching, deflecting or dropping it) and may
// fill each Out latch with at most one flit.
type Router interface {
	Step(cycle uint64)
}

// Source generates packets. Generate is called once per node per cycle,
// before the router phase; returned packets are enqueued at the node's
// injection queue in order.
type Source interface {
	Generate(node int, cycle uint64) []*traffic.PacketSpec
}

// Sink observes completed packets (after reassembly). Closed-loop workloads
// (the coherence substrate) react to deliveries; open-loop runs may pass nil.
type Sink interface {
	Deliver(p flit.Packet, cycle uint64)
}

// RouterFactory builds the router for one node around its Env.
type RouterFactory func(env *Env) Router

// Config assembles an Engine.
type Config struct {
	Mesh  *topology.Mesh
	Meter *energy.Meter
	Stats *stats.Collector
	// Source may be nil (no traffic — useful in unit tests that inject
	// directly).
	Source Source
	// Sink may be nil.
	Sink Sink
	// BufferDepth is the per-input buffer depth credited on every link; 0
	// disables credit flow control (bufferless designs).
	BufferDepth int
	// CreditDelay is the credit-return latency in cycles (default 1).
	CreditDelay int
	// PreCycle, when non-nil, runs at the very start of every cycle
	// (before retransmissions, generation and the router phase). Closed-
	// loop workloads use it to advance their own state machines.
	PreCycle func(cycle uint64)
	// Events is the optional flight recorder (nil disables runtime event
	// tracing; a nil recorder's methods are no-ops, so the engine and the
	// routers record unconditionally).
	Events *events.Recorder
	// Telemetry, when non-nil, receives the engine's live publication
	// stream: counter deltas every cycle, gauges / the latency histogram /
	// the shard execution profile at the telemetry's publish interval. Nil
	// disables publication entirely (the nil check is the only per-cycle
	// cost). Publication reads simulation state but never writes it, so
	// results are bit-identical with telemetry on or off.
	Telemetry *metrics.SimTelemetry
	// Diag, when non-nil, is the run-health monitor: the engine feeds its
	// progress watchdog every cycle and its windowed detectors (flit-age
	// watermark, storm baselines) every detector window, and routers notify
	// it of fault manifestation/detection through their Env. Like telemetry,
	// the monitor observes state and never writes it back, so results are
	// bit-identical with diagnostics on or off, and nothing allocates in
	// steady state. Nil disables the layer (one nil check per cycle).
	Diag *diag.Monitor
	// Shards selects the cycle-engine backend: 0 or 1 runs the sequential
	// engine, n > 1 partitions the mesh into a boundary-minimizing 2D grid
	// of rectangular tiles stepped by parallel worker goroutines with a
	// two-phase barrier per cycle, and a negative value auto-sizes to
	// GOMAXPROCS. The effective count is the largest feasible grid
	// factorization at most the request (ResolveShards). Results are
	// bit-identical to the sequential engine for every design, shard count
	// and rebalancing schedule.
	Shards int
	// RebalanceInterval is the period, in cycles, of the sharded backend's
	// dynamic rebalancing checks: every interval cycles it compares the
	// per-shard router-phase times over the window just ended and migrates a
	// boundary row or column from the hottest tile toward a cooler
	// neighbour. 0 selects DefaultRebalanceInterval; a negative value
	// disables automatic rebalancing (Engine.RebalanceShards still forces
	// passes manually). Ignored by the sequential engine.
	RebalanceInterval int
}

// Engine drives one network.
type Engine struct {
	mesh    *topology.Mesh
	meter   *energy.Meter
	coll    *stats.Collector
	source  Source
	sink    Sink
	routers []Router
	envs    []*Env

	// linkStage[n][p] holds the flit traversing the link out of node n's
	// port p during the current cycle (the LT stage); linkMask[n] mirrors the
	// row as a bitmask so the land loop touches only nodes with in-flight
	// flits — one byte load per idle node instead of four pointer loads.
	linkStage [][]*flit.Flit
	linkMask  []uint8

	reasm []*flit.Reassembler

	// wheel holds scheduled retransmissions: flits parked until the cycle
	// they re-enter their source's injection queue.
	wheel eventWheel

	// pool recycles ejected flits back to the generation path.
	pool *flit.Pool

	// rec is the flight recorder (nil when tracing is off).
	rec *events.Recorder

	preCycle func(cycle uint64)

	// backend runs the router phase: sequential, or sharded over worker
	// goroutines (see backend.go). shards is the resolved shard count the
	// backend was built for.
	backend backend
	shards  int

	bufferDepth int
	creditDelay int

	// creditSlab backs every env's downstream credit counters (node-major,
	// NumLinkPorts per node; entries for absent links stay unused) so the
	// whole network's flow-control state is contiguous.
	creditSlab []buffer.Credits

	// telemetry is the optional live-metrics publication handle (see
	// Config.Telemetry); retransmits counts scheduled retransmissions across
	// the whole run, for the dxbar_flits_retransmitted_total counter.
	telemetry   *metrics.SimTelemetry
	retransmits uint64

	// mon is the optional run-health monitor (see Config.Diag).
	mon *diag.Monitor

	// shared holds network-wide router state registered through
	// Env.RegisterShared (the AFC mode controller) — state that belongs to
	// the design but not to any single node, serialized once per snapshot.
	shared []SharedState

	// Checkpoint hook: when ckptFn is non-nil, Run invokes it after the step
	// that reaches nextCkpt, then advances nextCkpt by ckptEvery. The hook
	// runs between cycles, where the engine's transient state (output
	// latches, staged shard side effects) is empty — the only point a
	// snapshot is taken.
	ckptFn    func(cycle uint64)
	ckptEvery uint64
	nextCkpt  uint64

	cycle uint64
}

// New builds an engine and its per-node Envs, then instantiates routers via
// the factory. The factory runs after all Envs exist so credit wiring is
// complete.
func New(cfg Config, factory RouterFactory) (*Engine, error) {
	if cfg.Mesh == nil || cfg.Meter == nil || cfg.Stats == nil {
		return nil, fmt.Errorf("sim: Mesh, Meter and Stats are required")
	}
	if factory == nil {
		return nil, fmt.Errorf("sim: router factory is required")
	}
	if cfg.CreditDelay == 0 {
		cfg.CreditDelay = 1
	}
	n := cfg.Mesh.Nodes()
	e := &Engine{
		mesh:        cfg.Mesh,
		meter:       cfg.Meter,
		coll:        cfg.Stats,
		source:      cfg.Source,
		sink:        cfg.Sink,
		linkStage:   make([][]*flit.Flit, n),
		linkMask:    make([]uint8, n),
		reasm:       make([]*flit.Reassembler, n),
		wheel:       newEventWheel(64),
		pool:        flit.NewPool(),
		rec:         cfg.Events,
		telemetry:   cfg.Telemetry,
		mon:         cfg.Diag,
		preCycle:    cfg.PreCycle,
		bufferDepth: cfg.BufferDepth,
		creditDelay: cfg.CreditDelay,
	}
	if cfg.BufferDepth > 0 {
		e.creditSlab = buffer.NewCreditsSlab(n*flit.NumLinkPorts, cfg.BufferDepth, cfg.CreditDelay)
	}
	e.envs = make([]*Env, n)
	for i := 0; i < n; i++ {
		e.linkStage[i] = make([]*flit.Flit, flit.NumLinkPorts)
		e.reasm[i] = flit.NewReassembler()
		e.envs[i] = newEnv(e, i, cfg.BufferDepth, cfg.CreditDelay)
	}
	// Two-pass credit wiring: every env's counters must exist before any
	// return closure captures a neighbour's counter.
	for i := 0; i < n; i++ {
		env := e.envs[i]
		for p := flit.North; p <= flit.West; p++ {
			if nb := env.neighbors[p]; nb >= 0 {
				env.nbrEnv[p] = e.envs[nb]
				env.nbrIn[p] = p.Opposite()
			}
		}
		env.createCredits()
	}
	for i := 0; i < n; i++ {
		e.envs[i].wireCredits()
	}
	// Size the flit pool from the topology: per node, up to NumPorts input
	// latches + NumPorts output latches, the link stage, a router's internal
	// buffering (bounded by 4*BufferDepth or the secondary-crossbar deque),
	// and the materialized injection slack. Above-saturation backlog is
	// queued as specs, not flits, so this bound holds at any load.
	perNode := 2*flit.NumPorts + flit.NumLinkPorts + 4*cfg.BufferDepth + 16
	e.pool.Prime(n * perNode)
	e.shards = ResolveShards(cfg.Shards, cfg.Mesh.Width, cfg.Mesh.Height)
	if e.shards > 1 {
		e.backend = newShardedBackend(e, e.shards, cfg.RebalanceInterval)
	} else {
		e.backend = seqBackend{e}
	}
	e.wireCollectors()
	e.installDiag()
	e.routers = make([]Router, n)
	for i := 0; i < n; i++ {
		e.routers[i] = factory(e.envs[i])
	}
	return e, nil
}

// installDiag hands the run-health monitor its trace widener. It runs after
// wireCollectors (construction and Reset) because widening must reach the
// per-env staged recorders, which wireCollectors just rebuilt.
func (e *Engine) installDiag() {
	if e.mon == nil {
		return
	}
	if e.rec == nil {
		e.mon.SetTraceWidener(nil)
		return
	}
	e.mon.SetTraceWidener(func() {
		e.rec.Widen()
		for _, env := range e.envs {
			if env.rec != e.rec {
				env.rec.Widen()
			}
		}
	})
}

// wireCollectors points every Env at the meter, collector and recorder its
// router must write through: the engine's masters in sequential mode, the
// owning shard's scratch (and a per-env event stage) in sharded mode. Runs
// at construction and again on Reset, because Reset swaps the masters.
func (e *Engine) wireCollectors() {
	sb, sharded := e.backend.(*shardedBackend)
	if !sharded {
		for _, env := range e.envs {
			env.shard = nil
			env.meter = e.meter
			env.coll = e.coll
			env.rec = e.rec
		}
		return
	}
	for _, s := range sb.shards {
		s.meter = e.meter.Scratch()
		s.coll = e.coll.Scratch()
		for _, n := range s.nodes {
			env := e.envs[n]
			env.shard = s
			env.meter = s.meter
			env.coll = s.coll
			env.rec = e.rec.NewStage()
			if env.pendingRetx == nil {
				// A router stages at most one retransmit per consumed flit:
				// the port count bounds it. Preallocating keeps the steady
				// state allocation-free even on nodes that drop rarely —
				// growing 64 nil slices by occasional single appends would
				// otherwise trickle allocations for thousands of cycles.
				env.pendingRetx = make([]stagedRetx, 0, flit.NumPorts)
			}
		}
	}
}

// Cycle returns the current cycle number.
func (e *Engine) Cycle() uint64 { return e.cycle }

// Env returns node i's environment (tests and the coherence substrate use
// it to inspect queues).
func (e *Engine) Env(i int) *Env { return e.envs[i] }

// Router returns node i's router (for fault injection and inspection).
func (e *Engine) Router(i int) Router { return e.routers[i] }

// Mesh returns the topology.
func (e *Engine) Mesh() *topology.Mesh { return e.mesh }

// Pool returns the engine's flit free list (leak tests assert that a drained
// network has zero outstanding flits).
func (e *Engine) Pool() *flit.Pool { return e.pool }

// Shards returns the resolved shard count of the engine's router-phase
// backend (1 = sequential).
func (e *Engine) Shards() int { return e.backend.shardCount() }

// RebalanceShards forces one shard-rebalancing pass right now, between
// cycles, regardless of the configured interval or the imbalance threshold:
// the first feasible boundary migration executes even at zero measured gain.
// It reports whether a migration happened (false on a sequential engine or
// when the partition is down to single-row, single-column tiles). Tests use
// it to force deterministic migrations mid-run; results are bit-identical
// whether or when it is called.
func (e *Engine) RebalanceShards() bool {
	sb, ok := e.backend.(*shardedBackend)
	if !ok {
		return false
	}
	return sb.rebalance(true)
}

// ShardRebalances reports the dynamic-rebalancing totals so far: the number
// of passes that migrated work, and the total mesh nodes moved between
// shards. Zero on a sequential engine.
func (e *Engine) ShardRebalances() (rebalances, nodesMigrated uint64) {
	sb, ok := e.backend.(*shardedBackend)
	if !ok {
		return 0, 0
	}
	return sb.rebalances, sb.migrated
}

// ScheduleRetransmit re-enqueues f at the front of its source's injection
// queue after delay cycles (SCARAB NACK path, fault recovery). The flit's
// route/hop state is reset at reinjection time.
//
// The minimum effective delay is 1 cycle: retransmissions are delivered at
// the start of a cycle, before the router phase, so a delay of 0 would mean
// re-enqueueing into a cycle whose injection already happened. Delay 0 is
// therefore clamped to 1 — the flit reappears at the head of its source
// queue on the next cycle.
func (e *Engine) ScheduleRetransmit(f *flit.Flit, delay uint64) {
	if delay == 0 {
		delay = 1
	}
	e.retransmits++
	e.rec.Record(e.cycle, events.Retransmit, int(f.Src), flit.Invalid, f.PacketID, f.ID, int32(delay))
	e.wheel.schedule(e.cycle, e.cycle+delay, f)
}

// Step advances the network by one cycle.
func (e *Engine) Step() {
	c := e.cycle

	if e.preCycle != nil {
		e.preCycle(c)
	}

	// Deliver scheduled retransmissions to the front of source queues.
	for _, f := range e.wheel.take(c) {
		f.Retransmits++
		e.envs[f.Src].pushFrontInjection(f)
	}

	// Generation. Packets are queued as compact specs; flits materialize
	// out of the pool only when a node's injection deque runs low, so the
	// live flit population tracks the in-network load, not the injection
	// backlog (which grows without bound above saturation and would
	// otherwise force a fresh allocation for every backlog increment).
	if e.source != nil {
		for nIdx, env := range e.envs {
			for _, spec := range e.source.Generate(nIdx, c) {
				e.coll.PacketInjected(c)
				e.coll.GeneratedFlits(c, int(spec.NumFlits))
				env.pushSpec(*spec)
			}
			if env.pendingSpecs.len() > 0 {
				env.topUpInjection(e.pool)
			}
		}
	}

	// Router phase (SA/ST): sequential or tile-parallel, depending on the
	// backend. Either way every staged side effect is applied to master
	// state before the link phase below observes it.
	e.backend.routerPhase(c)

	// Link phase: first land the flits that spent this cycle on the wire,
	// then launch the freshly switched ones onto the wire. Both loops walk
	// activity bitmasks (linkMask / env.outMask) and visit ports in
	// ascending bit order — the same order the dense loops used — so idle
	// nodes cost one byte test and event ordering is unchanged.
	for u := range e.envs {
		m := e.linkMask[u]
		if m == 0 {
			continue
		}
		e.linkMask[u] = 0
		row := e.linkStage[u]
		uenv := e.envs[u]
		for b := m; b != 0; b &= b - 1 {
			p := flit.Port(bits.TrailingZeros8(b))
			f := row[p]
			nb, q := uenv.nbrEnv[p], uenv.nbrIn[p]
			if nb.In[q] != nil {
				panic(fmt.Sprintf("sim: input latch collision at node %d port %s cycle %d", nb.Node, q, c))
			}
			nb.In[q] = f
			nb.InMask |= 1 << uint(q)
			row[p] = nil
		}
	}
	launched := 0
	for u, env := range e.envs {
		m := env.outMask
		if m == 0 {
			continue
		}
		env.outMask = 0
		// Ejection.
		if m&(1<<uint(flit.Local)) != 0 {
			f := env.out[flit.Local]
			env.out[flit.Local] = nil
			e.eject(u, f, c)
			m &^= 1 << uint(flit.Local)
		}
		for b := m; b != 0; b &= b - 1 {
			p := flit.Port(bits.TrailingZeros8(b))
			f := env.out[p]
			env.out[p] = nil
			f.Hops++
			e.coll.LinkEvent(u, p, c)
			e.linkStage[u][p] = f
		}
		launched += bits.OnesCount8(m)
		e.linkMask[u] |= m
	}
	e.meter.AddLinkTraversals(uint64(launched))

	// Credit pipelines. The mask check is hoisted out of the call so idle
	// envs (no credits in flight) cost one load per cycle, not a call.
	for _, env := range e.envs {
		if env.creditTickMask != 0 {
			env.tickCredits()
		}
	}

	// Time-series sampling: when the collector's sampler is due, hand it
	// the gauges only the engine can see. SampleDue is a nil check plus a
	// compare, and RecordSample writes into a preallocated ring, so the
	// cycle loop stays allocation-free with sampling enabled.
	if e.coll.SampleDue(c) {
		e.coll.RecordSample(c, stats.Probe{
			InFlightFlits: e.pool.Outstanding(),
			QueuedFlits:   e.QueuedFlits(),
			BufferedFlits: e.bufferedFlits(),
		})
	}

	e.cycle++

	// Live telemetry. The per-cycle leg is a handful of atomic counter
	// deltas; the O(nodes) gauge scans, the latency-histogram copy and the
	// shard execution profile only run at the telemetry's publish interval.
	// All of it reads state and writes none back, so the simulation is
	// bit-identical with telemetry on or off, and none of it allocates.
	if t := e.telemetry; t != nil {
		t.OnCycle(e.counterSnapshot())
		if t.PublishDue(c) {
			e.publishGauges(c)
		}
	}

	// Run health. The per-cycle leg is the progress watchdog (two compares
	// on the healthy path); the windowed leg scans the engine-visible flits
	// for the age watermark and feeds the storm baselines. Both run at a
	// sequential point after every staged side effect has been replayed, so
	// the detectors see identical state on the sequential and sharded
	// engines — and like telemetry they read state and never write it back.
	if m := e.mon; m != nil {
		m.ObserveCycle(c, e.coll.TotalEjected(), e.pool.Outstanding())
		if m.WindowDue(c) {
			e.observeDiagWindow(c)
		}
	}
}

// observeDiagWindow gathers the windowed detector sample: the oldest flit
// visible to the engine — injection-queue heads, input latches and link
// stages (router-internal buffers are design-private and excluded; a flit
// starving inside one still ages on the latches around it) — plus the
// whole-run deflection and retransmission totals. Allocation-free.
func (e *Engine) observeDiagWindow(c uint64) {
	var oldest *flit.Flit
	node := int32(-1)
	for u, env := range e.envs {
		if f := env.injection.front(); f != nil && (oldest == nil || f.InjectionCycle < oldest.InjectionCycle) {
			oldest, node = f, int32(u)
		}
		for b := env.InMask; b != 0; b &= b - 1 {
			if f := env.In[bits.TrailingZeros8(b)]; f != nil && (oldest == nil || f.InjectionCycle < oldest.InjectionCycle) {
				oldest, node = f, int32(u)
			}
		}
		for b := e.linkMask[u]; b != 0; b &= b - 1 {
			if f := e.linkStage[u][bits.TrailingZeros8(b)]; f != nil && (oldest == nil || f.InjectionCycle < oldest.InjectionCycle) {
				oldest, node = f, int32(u)
			}
		}
	}
	s := diag.WindowSample{
		Cycle:       c,
		OldestNode:  node,
		Deflected:   e.coll.TotalDeflected(),
		Retransmits: e.retransmits,
	}
	if oldest != nil {
		s.OldestAge = c - oldest.InjectionCycle
		s.OldestPacket = oldest.PacketID
		s.OldestFlit = oldest.ID
	}
	e.mon.ObserveWindow(s)
}

// counterSnapshot gathers the whole-run totals the telemetry publishes as
// monotonic counters.
func (e *Engine) counterSnapshot() metrics.SimCounters {
	return metrics.SimCounters{
		Cycles:           e.cycle,
		InjectedFlits:    e.coll.TotalGenerated(),
		EjectedFlits:     e.coll.TotalEjected(),
		DroppedFlits:     e.coll.TotalDropped(),
		RetransmitFlits:  e.retransmits,
		DeflectedFlits:   e.coll.TotalDeflected(),
		PacketsInjected:  e.coll.TotalPacketsInjected(),
		PacketsDelivered: e.coll.TotalPacketsDelivered(),
	}
}

// publishGauges runs the interval leg of telemetry publication: network
// gauges, the shard execution profile and the latency-histogram snapshot.
func (e *Engine) publishGauges(c uint64) {
	busy, wait := e.backend.profile()
	e.telemetry.OnPublish(c, metrics.SimGauges{
		InFlightFlits: e.pool.Outstanding(),
		QueuedFlits:   e.QueuedFlits(),
		BufferedFlits: e.bufferedFlits(),
	}, busy, wait)
	if sb, ok := e.backend.(*shardedBackend); ok {
		e.telemetry.OnShardState(sb.rebalances, sb.migrated, sb.nodeCounts)
	}
	if h := e.telemetry.Latency(); h != nil {
		e.coll.PublishLatency(h)
	}
}

// FlushTelemetry forces a final publication of every telemetry series — the
// run usually ends between publish intervals, which would otherwise leave
// the gauges, the latency histogram and the shard profile up to one interval
// stale. No-op without telemetry.
func (e *Engine) FlushTelemetry() {
	if e.telemetry == nil {
		return
	}
	e.telemetry.OnCycle(e.counterSnapshot())
	e.publishGauges(e.cycle)
}

// ShardProfile is the execution profile of one shard of the parallel cycle
// engine, accumulated over the run so far.
type ShardProfile struct {
	// Shard is the shard index; Nodes the number of mesh nodes in its tile.
	Shard int
	Nodes int
	// RouterPhase is the cumulative wall time the shard spent stepping its
	// routers; BarrierWait the cumulative time it sat idle at the cycle
	// barrier waiting for the slowest shard. A shard with near-zero
	// BarrierWait is the bottleneck tile.
	RouterPhase time.Duration
	BarrierWait time.Duration
}

// ShardProfiles returns the per-shard execution profile of the sharded
// backend, or nil for a sequential engine. Allocates; call at end of run,
// not per cycle.
func (e *Engine) ShardProfiles() []ShardProfile {
	sb, ok := e.backend.(*shardedBackend)
	if !ok {
		return nil
	}
	out := make([]ShardProfile, len(sb.shards))
	for i, s := range sb.shards {
		out[i] = ShardProfile{
			Shard:       i,
			Nodes:       len(s.nodes),
			RouterPhase: sb.busy[i],
			BarrierWait: sb.wait[i],
		}
	}
	return out
}

// bufferedFlits returns the number of downstream buffer slots held by
// credit flow control across the whole network — consumed credits,
// including those still riding the return pipelines. 0 for bufferless
// designs.
func (e *Engine) bufferedFlits() int {
	total := 0
	for _, env := range e.envs {
		total += env.creditOccupancy()
	}
	return total
}

func (e *Engine) eject(node int, f *flit.Flit, c uint64) {
	if int(f.Dst) != node {
		panic(fmt.Sprintf("sim: flit %v ejected at wrong node %d", f, node))
	}
	e.coll.EjectedFlit(c)
	e.rec.Record(c, events.Eject, node, flit.Local, f.PacketID, f.ID, int32(c-f.InjectionCycle))
	pkt, done := e.reasm[node].Accept(f, c)
	// Ejection ends the flit's network life: reassembly has folded its
	// counters into the packet, so the flit returns to the pool here.
	e.pool.Put(f)
	if done {
		e.coll.PacketDone(pkt)
		if e.sink != nil {
			e.sink.Deliver(pkt, c)
		}
	}
}

// Reset rewires the engine for a fresh run without reallocating its bulk
// structures (Envs, link stages, credit pipelines, the event wheel, the
// reassemblers and the flit free list all survive). The new config must use
// the same Mesh, BufferDepth and CreditDelay as the original — those shaped
// the credit wiring at construction time — and routers are rebuilt from
// scratch via the factory, since router-internal state (buffers, pipeline
// registers, mode controllers) is design-specific.
//
// Flits still held by the discarded routers are abandoned to the garbage
// collector; the pool's outstanding count restarts at zero.
func (e *Engine) Reset(cfg Config, factory RouterFactory) error {
	if cfg.Mesh != e.mesh {
		return fmt.Errorf("sim: Reset requires the same Mesh the engine was built with")
	}
	if cfg.Meter == nil || cfg.Stats == nil {
		return fmt.Errorf("sim: Meter and Stats are required")
	}
	if factory == nil {
		return fmt.Errorf("sim: router factory is required")
	}
	if cfg.CreditDelay == 0 {
		cfg.CreditDelay = 1
	}
	if cfg.BufferDepth != e.bufferDepth || cfg.CreditDelay != e.creditDelay {
		return fmt.Errorf("sim: Reset requires BufferDepth=%d CreditDelay=%d (got %d, %d)",
			e.bufferDepth, e.creditDelay, cfg.BufferDepth, cfg.CreditDelay)
	}
	if got := ResolveShards(cfg.Shards, e.mesh.Width, e.mesh.Height); got != e.shards {
		return fmt.Errorf("sim: Reset requires Shards resolving to %d (got %d)", e.shards, got)
	}
	e.meter = cfg.Meter
	e.coll = cfg.Stats
	e.source = cfg.Source
	e.sink = cfg.Sink
	e.rec = cfg.Events
	e.telemetry = cfg.Telemetry
	e.mon = cfg.Diag
	e.preCycle = cfg.PreCycle
	e.cycle = 0
	e.retransmits = 0
	e.backend.resetProfile()
	if sb, ok := e.backend.(*shardedBackend); ok {
		// The rebalance schedule may change between runs; the partition
		// itself carries over (it only decides worker assignment, never
		// results, so a reused engine keeps its learned balance).
		sb.interval = resolveRebalanceInterval(cfg.RebalanceInterval)
	}
	e.wheel.reset()
	e.pool.DropOutstanding()
	e.shared = e.shared[:0]
	e.ckptFn, e.ckptEvery, e.nextCkpt = nil, 0, 0
	e.wireCollectors()
	e.installDiag()
	for i := range e.envs {
		e.envs[i].reset()
		e.reasm[i].Reset()
		for p := range e.linkStage[i] {
			e.linkStage[i][p] = nil
		}
		e.linkMask[i] = 0
		e.routers[i] = factory(e.envs[i])
	}
	return nil
}

// Run advances the engine by n cycles. With a run-health monitor attached it
// honors stop requests (diag.Interrupt, Monitor.RequestStop) at cycle
// boundaries — the graceful-shutdown path; the check is two atomic loads per
// cycle and steers nothing else, so results stay bit-identical.
func (e *Engine) Run(n uint64) {
	if m := e.mon; m != nil {
		for i := uint64(0); i < n; i++ {
			if m.StopRequested() {
				return
			}
			e.Step()
			if e.ckptFn != nil && e.cycle == e.nextCkpt {
				e.ckptFn(e.cycle)
				e.nextCkpt += e.ckptEvery
			}
		}
		return
	}
	for i := uint64(0); i < n; i++ {
		e.Step()
		if e.ckptFn != nil && e.cycle == e.nextCkpt {
			e.ckptFn(e.cycle)
			e.nextCkpt += e.ckptEvery
		}
	}
}

// SetCheckpointHook arranges for fn to run inside Run after every step that
// lands on a multiple of every cycles — the inter-cycle point where a
// snapshot captures the complete engine state. The steady-state cost with
// checkpointing enabled is one nil check and one compare per cycle; fn itself
// may allocate (it serializes). Pass every = 0 or fn = nil to disable. On a
// resumed engine the next checkpoint is the first multiple of every strictly
// after the restored cycle.
func (e *Engine) SetCheckpointHook(every uint64, fn func(cycle uint64)) {
	if every == 0 || fn == nil {
		e.ckptFn, e.ckptEvery, e.nextCkpt = nil, 0, 0
		return
	}
	e.ckptFn = fn
	e.ckptEvery = every
	e.nextCkpt = (e.cycle/every + 1) * every
}

// RunUntil advances the engine until pred returns true (checked after every
// cycle) or maxCycles elapse; it reports whether pred fired.
func (e *Engine) RunUntil(pred func() bool, maxCycles uint64) bool {
	for i := uint64(0); i < maxCycles; i++ {
		e.Step()
		if pred() {
			return true
		}
	}
	return false
}

// QueuedFlits returns the total number of flits waiting in injection queues
// (drain checks in closed-loop runs).
func (e *Engine) QueuedFlits() int {
	total := 0
	for _, env := range e.envs {
		total += env.injectionLen()
	}
	return total
}

// SourceAdapter wraps a Bernoulli injector as a Source. It must be used by
// pointer: the returned slice aliases internal scratch that the next
// Generate call reuses (the engine consumes it within the same cycle).
type SourceAdapter struct {
	B       *traffic.Bernoulli
	scratch [1]*traffic.PacketSpec
}

// Generate implements Source.
func (s *SourceAdapter) Generate(node int, cycle uint64) []*traffic.PacketSpec {
	if spec := s.B.Generate(node, cycle); spec != nil {
		s.scratch[0] = spec
		return s.scratch[:]
	}
	return nil
}
