package sim

import (
	"strings"
	"testing"

	"dxbar/internal/energy"
	"dxbar/internal/flit"
	"dxbar/internal/metrics"
	"dxbar/internal/stats"
	"dxbar/internal/topology"
	"dxbar/internal/traffic"
)

func telemetryEngine(t *testing.T, shards int, tel *metrics.SimTelemetry) (*Engine, *stats.Collector) {
	t.Helper()
	mesh := topology.MustMesh(4, 4)
	coll := stats.NewCollector(mesh.Nodes(), 0, 10000)
	src := &SourceAdapter{B: testBernoulli(t, mesh)}
	eng, err := New(Config{
		Mesh: mesh, Meter: energy.NewMeter(), Stats: coll,
		Source: src, Telemetry: tel, Shards: shards,
	}, func(env *Env) Router { return &passthroughXY{env: env} })
	if err != nil {
		t.Fatal(err)
	}
	return eng, coll
}

// testBernoulli builds a low-load uniform-random Bernoulli source.
func testBernoulli(t *testing.T, mesh *topology.Mesh) *traffic.Bernoulli {
	t.Helper()
	pat, err := traffic.New("UR", mesh)
	if err != nil {
		t.Fatal(err)
	}
	bern, err := traffic.NewBernoulli(mesh, pat, 0.05, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	return bern
}

// passthroughXY is a minimal bufferless deflection router: XY-preferred,
// any free port otherwise. It exists so telemetry tests can run real
// multi-hop traffic between arbitrary node pairs without the full router
// designs (which live above this package).
type passthroughXY struct{ env *Env }

func (r *passthroughXY) Step(cycle uint64) {
	env := r.env
	for p := flit.North; p <= flit.West; p++ {
		f := env.In[p]
		if f == nil {
			continue
		}
		env.In[p] = nil
		r.forward(f)
	}
	if f := env.InjectionHead(); f != nil {
		out := r.route(f)
		if out != flit.Local && env.CanSend(out) {
			env.ConsumeInjection(cycle)
			env.Send(out, f)
		}
	}
}

func (r *passthroughXY) forward(f *flit.Flit) {
	env := r.env
	out := r.route(f)
	if env.CanSend(out) {
		env.Send(out, f)
		return
	}
	// Deflect: a bufferless mesh router has at least as many free cardinal
	// outputs as cardinal inputs, so some port always accepts.
	for p := flit.North; p <= flit.West; p++ {
		if env.CanSend(p) {
			env.Send(p, f)
			return
		}
	}
	panic("telemetry test router out of capacity")
}

func (r *passthroughXY) route(f *flit.Flit) flit.Port {
	m := r.env.Mesh()
	x, y := m.XY(r.env.Node)
	dx, dy := m.XY(int(f.Dst))
	switch {
	case dx > x:
		return flit.East
	case dx < x:
		return flit.West
	case dy > y:
		return flit.South
	case dy < y:
		return flit.North
	}
	return flit.Local
}

func TestTelemetryPublishesCounters(t *testing.T) {
	reg := metrics.NewRegistry()
	tel := metrics.NewSimTelemetry(reg, metrics.SimTelemetryOptions{
		Interval:      16,
		LatencyBounds: stats.LatencyBucketUppers(),
	})
	eng, coll := telemetryEngine(t, 1, tel)
	eng.Run(200)
	eng.FlushTelemetry()

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, metrics.MetricCycles+" 200") {
		t.Errorf("cycles counter missing or wrong:\n%s", out)
	}
	if coll.TotalGenerated() == 0 {
		t.Fatal("test produced no traffic; telemetry assertions vacuous")
	}
	for _, name := range []string{
		metrics.MetricInjectedFlits, metrics.MetricEjectedFlits,
		metrics.MetricPacketsIn, metrics.MetricPacketsOut,
		metrics.MetricCyclesPerSec, metrics.MetricLatency + "_count",
	} {
		if !strings.Contains(out, name) {
			t.Errorf("exposition missing %s", name)
		}
	}
}

func TestTelemetryShardProfile(t *testing.T) {
	reg := metrics.NewRegistry()
	tel := metrics.NewSimTelemetry(reg, metrics.SimTelemetryOptions{Shards: 2, Interval: 16})
	eng, _ := telemetryEngine(t, 2, tel)
	if eng.Shards() != 2 {
		t.Fatalf("shards = %d, want 2", eng.Shards())
	}
	eng.Run(100)
	eng.FlushTelemetry()

	profs := eng.ShardProfiles()
	if len(profs) != 2 {
		t.Fatalf("ShardProfiles len = %d, want 2", len(profs))
	}
	var totalNodes int
	for _, p := range profs {
		if p.RouterPhase <= 0 {
			t.Errorf("shard %d RouterPhase = %v, want > 0", p.Shard, p.RouterPhase)
		}
		totalNodes += p.Nodes
	}
	if totalNodes != 16 {
		t.Errorf("profile nodes sum = %d, want 16", totalNodes)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		metrics.MetricShardBusy + `{shard="0"}`,
		metrics.MetricShardWait + `{shard="1"}`,
		metrics.MetricShardImbalance,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %s:\n%s", want, out)
		}
	}
}

func TestSeqEngineHasNoShardProfile(t *testing.T) {
	eng, _ := telemetryEngine(t, 1, nil)
	eng.Run(10)
	if profs := eng.ShardProfiles(); profs != nil {
		t.Fatalf("sequential engine ShardProfiles = %v, want nil", profs)
	}
	eng.FlushTelemetry() // nil telemetry must be a no-op, not a panic
}

func TestTelemetrySurvivesReset(t *testing.T) {
	mesh := topology.MustMesh(4, 4)
	factory := func(env *Env) Router { return &passthroughXY{env: env} }
	newCfg := func() Config {
		return Config{
			Mesh: mesh, Meter: energy.NewMeter(),
			Stats:  stats.NewCollector(mesh.Nodes(), 0, 10000),
			Source: &SourceAdapter{B: testBernoulli(t, mesh)},
			Telemetry: metrics.NewSimTelemetry(metrics.NewRegistry(),
				metrics.SimTelemetryOptions{Shards: 2, Interval: 16}),
			Shards: 2,
		}
	}
	eng, err := New(newCfg(), factory)
	if err != nil {
		t.Fatal(err)
	}
	eng.Run(100)
	before := eng.ShardProfiles()
	if before[0].RouterPhase <= 0 {
		t.Fatal("no busy time accumulated before reset")
	}
	if err := eng.Reset(newCfg(), factory); err != nil {
		t.Fatal(err)
	}
	after := eng.ShardProfiles()
	for _, p := range after {
		if p.RouterPhase != 0 || p.BarrierWait != 0 {
			t.Fatalf("profile not zeroed by Reset: %+v", p)
		}
	}
}
