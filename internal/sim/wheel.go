package sim

import "dxbar/internal/flit"

// eventWheel is a ring-buffer timing wheel for retransmit events, replacing
// the per-cycle map[uint64][]*flit.Flit the engine used to churn: slot
// cycle&mask holds the flits due at that cycle, and emptied slots keep their
// backing arrays, so steady-state scheduling and dispatch never allocate.
//
// The wheel spans [now, now+len) cycles; scheduling further out grows the
// wheel (a rare event — the only scheduler is the SCARAB NACK path, whose
// delay is bounded by the mesh diameter + 1).
type eventWheel struct {
	slots   [][]*flit.Flit
	mask    uint64
	pending int
}

// newEventWheel returns a wheel covering at least `size` future cycles
// (rounded up to a power of two).
func newEventWheel(size int) eventWheel {
	n := 1
	for n < size {
		n <<= 1
	}
	return eventWheel{slots: make([][]*flit.Flit, n), mask: uint64(n - 1)}
}

// schedule enqueues f for dispatch at cycle `at` (strictly greater than
// `now`). It grows the wheel when `at` lies beyond the current horizon.
func (w *eventWheel) schedule(now, at uint64, f *flit.Flit) {
	if at-now >= uint64(len(w.slots)) {
		w.grow(now, at)
	}
	idx := at & w.mask
	w.slots[idx] = append(w.slots[idx], f)
	w.pending++
}

// take returns the flits due at `cycle` in scheduling order and empties the
// slot for reuse. The returned slice is valid until the slot's cycle comes
// around again — callers consume it immediately.
func (w *eventWheel) take(cycle uint64) []*flit.Flit {
	if w.pending == 0 {
		return nil
	}
	idx := cycle & w.mask
	s := w.slots[idx]
	w.slots[idx] = s[:0]
	w.pending -= len(s)
	return s
}

// grow rebuilds the wheel large enough to reach `at` from `now`. A slot's
// due cycle is recoverable because the wheel spans exactly one period: slot
// i holds the unique cycle ≡ i (mod len) within [now, now+len).
func (w *eventWheel) grow(now, at uint64) {
	oldLen := uint64(len(w.slots))
	n := len(w.slots) * 2
	for uint64(n) <= at-now {
		n *= 2
	}
	next := eventWheel{slots: make([][]*flit.Flit, n), mask: uint64(n - 1)}
	for i, slot := range w.slots {
		if len(slot) == 0 {
			continue
		}
		due := now + ((uint64(i) - now) & (oldLen - 1))
		for _, f := range slot {
			next.schedule(now, due, f)
		}
	}
	*w = next
}

// reset empties every slot, keeping the backing arrays (Engine.Reset).
func (w *eventWheel) reset() {
	for i := range w.slots {
		w.slots[i] = w.slots[i][:0]
	}
	w.pending = 0
}
