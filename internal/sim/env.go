package sim

import (
	"fmt"

	"dxbar/internal/buffer"
	"dxbar/internal/energy"
	"dxbar/internal/events"
	"dxbar/internal/flit"
	"dxbar/internal/stats"
	"dxbar/internal/topology"
)

// Env is a router's complete view of the network: its input latches, output
// latches, downstream credit counters, injection queue and the shared
// meter/collector. The engine owns and wires Envs; router implementations
// receive one at construction.
type Env struct {
	engine *Engine
	// Node is this router's node index.
	Node int
	// In holds the flit latched on each cardinal input port this cycle
	// (nil = none). The router must consume every entry during Step.
	In [flit.NumLinkPorts]*flit.Flit

	out [flit.NumPorts]*flit.Flit

	// downCredits[p] tracks free buffer space at the neighbour reached
	// through output port p (nil when bufferless or no link).
	downCredits [flit.NumLinkPorts]*buffer.Credits
	// upCredit[p] returns one credit to the neighbour that feeds input
	// port p (wired by the engine; nil when bufferless or no link).
	upCredit [flit.NumLinkPorts]func()

	injection   flitDeque
	bufferDepth int
	creditDelay int
}

func newEnv(e *Engine, node, bufferDepth, creditDelay int) *Env {
	return &Env{engine: e, Node: node, bufferDepth: bufferDepth, creditDelay: creditDelay}
}

// createCredits instantiates this node's downstream credit counters (first
// wiring pass — must run for every env before wireCredits).
func (env *Env) createCredits() {
	if env.bufferDepth <= 0 {
		return
	}
	m := env.engine.mesh
	for p := flit.North; p <= flit.West; p++ {
		if m.HasPort(env.Node, p) {
			env.downCredits[p] = buffer.NewCredits(env.bufferDepth, env.creditDelay)
		}
	}
}

// wireCredits connects the upstream credit-return closures (second wiring
// pass — every env's counters exist by now).
func (env *Env) wireCredits() {
	if env.bufferDepth <= 0 {
		return
	}
	m := env.engine.mesh
	for p := flit.North; p <= flit.West; p++ {
		nb := m.Neighbor(env.Node, p)
		if nb == -1 {
			continue
		}
		// A flit arriving on my input port p came through the neighbour's
		// opposite output port; returning a credit must replenish *that*
		// counter.
		counter := env.engine.envs[nb].downCredits[p.Opposite()]
		if counter != nil {
			port := p
			env.upCredit[port] = counter.Return
		}
	}
}

// Mesh returns the topology.
func (env *Env) Mesh() *topology.Mesh { return env.engine.mesh }

// Meter returns the shared energy meter.
func (env *Env) Meter() *energy.Meter { return env.engine.meter }

// Stats returns the shared statistics collector.
func (env *Env) Stats() *stats.Collector { return env.engine.coll }

// Events returns the shared flight recorder — nil when runtime event
// tracing is off, which every recorder method tolerates, so routers record
// unconditionally.
func (env *Env) Events() *events.Recorder { return env.engine.rec }

// HasLink reports whether output port p leads to a neighbour (Local always
// exists).
func (env *Env) HasLink(p flit.Port) bool {
	if p == flit.Local {
		return true
	}
	return env.engine.mesh.HasPort(env.Node, p)
}

// CanSend reports whether the router may launch a flit through output port
// p this cycle: the port must exist, be free, and (for credited designs)
// have a downstream credit. Local ejection never needs credits.
func (env *Env) CanSend(p flit.Port) bool {
	if !env.HasLink(p) || env.out[p] != nil {
		return false
	}
	if p == flit.Local {
		return true
	}
	if c := env.downCredits[p]; c != nil {
		return c.CanSend()
	}
	return true
}

// Send launches f through output port p (the flit's ST completes this
// cycle; LT happens next cycle). It consumes a downstream credit on
// credited links and computes the flit's look-ahead route for the next
// router via the caller-provided route (already stored in f.Route).
func (env *Env) Send(p flit.Port, f *flit.Flit) {
	if !env.HasLink(p) {
		panic(fmt.Sprintf("sim: node %d sending through missing port %s", env.Node, p))
	}
	if env.out[p] != nil {
		panic(fmt.Sprintf("sim: node %d output %s already driven", env.Node, p))
	}
	if p != flit.Local {
		if c := env.downCredits[p]; c != nil {
			c.Consume()
		}
	}
	env.out[p] = f
}

// OutputFree reports whether output latch p is still undriven this cycle.
func (env *Env) OutputFree(p flit.Port) bool { return env.out[p] == nil }

// ReturnCredit hands one credit back to the upstream neighbour feeding
// input port p (call when a flit that arrived through p frees its buffer
// slot, or immediately when it bypasses buffering entirely).
func (env *Env) ReturnCredit(p flit.Port) {
	if fn := env.upCredit[p]; fn != nil {
		fn()
	}
}

// DownstreamCredits exposes the credit counter for output port p (nil when
// bufferless); routers use it for availability checks in tests.
func (env *Env) DownstreamCredits(p flit.Port) *buffer.Credits {
	if !p.IsCardinal() {
		return nil
	}
	return env.downCredits[p]
}

// InjectionHead returns the oldest waiting injection flit (nil if none).
func (env *Env) InjectionHead() *flit.Flit {
	return env.injection.front()
}

// ConsumeInjection removes the injection-queue head; the router calls it
// after successfully switching the head flit. The flit's network entry time
// is stamped for statistics.
func (env *Env) ConsumeInjection(cycle uint64) *flit.Flit {
	if env.injection.len() == 0 {
		panic("sim: ConsumeInjection on empty queue")
	}
	f := env.injection.popFront()
	f.EnqueueCycle = cycle
	env.engine.rec.Record(cycle, events.Inject, env.Node, flit.Local,
		f.PacketID, f.ID, int32(cycle-f.InjectionCycle))
	return f
}

// ScheduleRetransmit asks the engine to re-enqueue f at its source after
// delay cycles (see Engine.ScheduleRetransmit).
func (env *Env) ScheduleRetransmit(f *flit.Flit, delay uint64) {
	env.engine.ScheduleRetransmit(f, delay)
}

func (env *Env) pushBackInjection(f *flit.Flit)  { env.injection.pushBack(f) }
func (env *Env) pushFrontInjection(f *flit.Flit) { env.injection.pushFront(f) }
func (env *Env) injectionLen() int               { return env.injection.len() }

// creditOccupancy returns the number of downstream buffer slots this node's
// flow control currently holds: for each credited output link, the credits
// consumed and not yet usable again (occupied slots plus credits riding the
// return pipeline). 0 when bufferless.
func (env *Env) creditOccupancy() int {
	total := 0
	for _, c := range env.downCredits {
		if c != nil {
			total += env.bufferDepth - c.Available()
		}
	}
	return total
}

func (env *Env) tickCredits() {
	for _, c := range env.downCredits {
		if c != nil {
			c.Tick()
		}
	}
}

// reset clears all per-run state: latches, the injection queue and the
// credit counters (Engine.Reset). The credit wiring itself is topology-bound
// and survives.
func (env *Env) reset() {
	for p := range env.In {
		env.In[p] = nil
	}
	for p := range env.out {
		env.out[p] = nil
	}
	env.injection.clear()
	for _, c := range env.downCredits {
		if c != nil {
			c.Reset()
		}
	}
}
