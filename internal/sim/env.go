package sim

import (
	"fmt"

	"dxbar/internal/buffer"
	"dxbar/internal/energy"
	"dxbar/internal/events"
	"dxbar/internal/flit"
	"dxbar/internal/stats"
	"dxbar/internal/topology"
)

// Env is a router's complete view of the network: its input latches, output
// latches, downstream credit counters, injection queue and the shared
// meter/collector. The engine owns and wires Envs; router implementations
// receive one at construction.
type Env struct {
	engine *Engine
	// Node is this router's node index.
	Node int
	// In holds the flit latched on each cardinal input port this cycle
	// (nil = none). The router must consume every entry during Step.
	In [flit.NumLinkPorts]*flit.Flit

	out [flit.NumPorts]*flit.Flit

	// downCredits[p] tracks free buffer space at the neighbour reached
	// through output port p (nil when bufferless or no link).
	downCredits [flit.NumLinkPorts]*buffer.Credits
	// upCredit[p] returns one credit to the neighbour that feeds input
	// port p (wired by the engine; nil when bufferless or no link).
	upCredit [flit.NumLinkPorts]func()

	injection   flitDeque
	bufferDepth int
	creditDelay int

	// meter, coll and rec are what this node's router writes through: the
	// engine's masters in sequential mode, or the owning shard's scratch
	// meter/collector and a per-env event stage in sharded mode (see
	// Engine.wireCollectors). Routers never see the difference.
	meter *energy.Meter
	coll  *stats.Collector
	rec   *events.Recorder

	// shard is the owning shard in sharded mode (nil = sequential). When
	// set, ReturnCredit and ScheduleRetransmit stage instead of applying —
	// the barrier replays them so no worker writes cross-shard state.
	shard *shard

	// pendingRetx holds retransmissions staged during the parallel router
	// phase, drained into the event wheel in node order at the barrier.
	pendingRetx []stagedRetx
}

func newEnv(e *Engine, node, bufferDepth, creditDelay int) *Env {
	return &Env{engine: e, Node: node, bufferDepth: bufferDepth, creditDelay: creditDelay}
}

// createCredits instantiates this node's downstream credit counters (first
// wiring pass — must run for every env before wireCredits).
func (env *Env) createCredits() {
	if env.bufferDepth <= 0 {
		return
	}
	m := env.engine.mesh
	for p := flit.North; p <= flit.West; p++ {
		if m.HasPort(env.Node, p) {
			env.downCredits[p] = buffer.NewCredits(env.bufferDepth, env.creditDelay)
		}
	}
}

// wireCredits connects the upstream credit-return closures (second wiring
// pass — every env's counters exist by now).
func (env *Env) wireCredits() {
	if env.bufferDepth <= 0 {
		return
	}
	m := env.engine.mesh
	for p := flit.North; p <= flit.West; p++ {
		nb := m.Neighbor(env.Node, p)
		if nb == -1 {
			continue
		}
		// A flit arriving on my input port p came through the neighbour's
		// opposite output port; returning a credit must replenish *that*
		// counter.
		counter := env.engine.envs[nb].downCredits[p.Opposite()]
		if counter != nil {
			port := p
			env.upCredit[port] = counter.Return
		}
	}
}

// Mesh returns the topology.
func (env *Env) Mesh() *topology.Mesh { return env.engine.mesh }

// Meter returns the energy meter this router records into (the engine's in
// sequential mode, the shard's scratch in sharded mode — absorbed into the
// engine's at every cycle barrier).
func (env *Env) Meter() *energy.Meter { return env.meter }

// Stats returns the statistics collector this router records into (the
// engine's, or the shard's scratch — see Meter).
func (env *Env) Stats() *stats.Collector { return env.coll }

// Events returns the flight recorder this router records into — nil when
// runtime event tracing is off, which every recorder method tolerates, so
// routers record unconditionally. In sharded mode this is the env's private
// stage, drained into the master recorder in node order at the barrier.
func (env *Env) Events() *events.Recorder { return env.rec }

// HasLink reports whether output port p leads to a neighbour (Local always
// exists).
func (env *Env) HasLink(p flit.Port) bool {
	if p == flit.Local {
		return true
	}
	return env.engine.mesh.HasPort(env.Node, p)
}

// CanSend reports whether the router may launch a flit through output port
// p this cycle: the port must exist, be free, and (for credited designs)
// have a downstream credit. Local ejection never needs credits.
func (env *Env) CanSend(p flit.Port) bool {
	if !env.HasLink(p) || env.out[p] != nil {
		return false
	}
	if p == flit.Local {
		return true
	}
	if c := env.downCredits[p]; c != nil {
		return c.CanSend()
	}
	return true
}

// Send launches f through output port p (the flit's ST completes this
// cycle; LT happens next cycle). It consumes a downstream credit on
// credited links and computes the flit's look-ahead route for the next
// router via the caller-provided route (already stored in f.Route).
func (env *Env) Send(p flit.Port, f *flit.Flit) {
	if !env.HasLink(p) {
		panic(fmt.Sprintf("sim: node %d sending through missing port %s", env.Node, p))
	}
	if env.out[p] != nil {
		panic(fmt.Sprintf("sim: node %d output %s already driven", env.Node, p))
	}
	if p != flit.Local {
		if c := env.downCredits[p]; c != nil {
			c.Consume()
		}
	}
	env.out[p] = f
}

// OutputFree reports whether output latch p is still undriven this cycle.
func (env *Env) OutputFree(p flit.Port) bool { return env.out[p] == nil }

// ReturnCredit hands one credit back to the upstream neighbour feeding
// input port p (call when a flit that arrived through p frees its buffer
// slot, or immediately when it bypasses buffering entirely). In sharded
// mode the return is staged and applied at the cycle barrier: the upstream
// counter may belong to another shard, and since a returned credit rides
// the delay pipeline and only becomes visible at the post-link-phase Tick,
// barrier-time application is observationally identical to the sequential
// engine's mid-phase application.
func (env *Env) ReturnCredit(p flit.Port) {
	fn := env.upCredit[p]
	if fn == nil {
		return
	}
	if s := env.shard; s != nil {
		s.creditReturns = append(s.creditReturns, fn)
		return
	}
	fn()
}

// DownstreamCredits exposes the credit counter for output port p (nil when
// bufferless); routers use it for availability checks in tests.
func (env *Env) DownstreamCredits(p flit.Port) *buffer.Credits {
	if !p.IsCardinal() {
		return nil
	}
	return env.downCredits[p]
}

// InjectionHead returns the oldest waiting injection flit (nil if none).
func (env *Env) InjectionHead() *flit.Flit {
	return env.injection.front()
}

// ConsumeInjection removes the injection-queue head; the router calls it
// after successfully switching the head flit. The flit's network entry time
// is stamped for statistics.
func (env *Env) ConsumeInjection(cycle uint64) *flit.Flit {
	if env.injection.len() == 0 {
		panic("sim: ConsumeInjection on empty queue")
	}
	f := env.injection.popFront()
	f.EnqueueCycle = cycle
	env.rec.Record(cycle, events.Inject, env.Node, flit.Local,
		f.PacketID, f.ID, int32(cycle-f.InjectionCycle))
	return f
}

// ScheduleRetransmit asks the engine to re-enqueue f at its source after
// delay cycles (see Engine.ScheduleRetransmit). In sharded mode the wheel
// insertion is staged per-env and replayed in node order at the barrier, so
// the wheel's delivery order matches the sequential engine's; the
// Retransmit event is recorded into the env's stage at call time so it
// stays interleaved with the router's other events.
func (env *Env) ScheduleRetransmit(f *flit.Flit, delay uint64) {
	if env.shard == nil {
		env.engine.ScheduleRetransmit(f, delay)
		return
	}
	if delay == 0 {
		delay = 1
	}
	env.rec.Record(env.engine.cycle, events.Retransmit, f.Src, flit.Invalid,
		f.PacketID, f.ID, int32(delay))
	env.pendingRetx = append(env.pendingRetx, stagedRetx{f: f, delay: delay})
	env.shard.retx++
}

func (env *Env) pushBackInjection(f *flit.Flit)  { env.injection.pushBack(f) }
func (env *Env) pushFrontInjection(f *flit.Flit) { env.injection.pushFront(f) }
func (env *Env) injectionLen() int               { return env.injection.len() }

// creditOccupancy returns the number of downstream buffer slots this node's
// flow control currently holds: for each credited output link, the credits
// consumed and not yet usable again (occupied slots plus credits riding the
// return pipeline). 0 when bufferless.
func (env *Env) creditOccupancy() int {
	total := 0
	for _, c := range env.downCredits {
		if c != nil {
			total += env.bufferDepth - c.Available()
		}
	}
	return total
}

func (env *Env) tickCredits() {
	for _, c := range env.downCredits {
		if c != nil {
			c.Tick()
		}
	}
}

// reset clears all per-run state: latches, the injection queue and the
// credit counters (Engine.Reset). The credit wiring itself is topology-bound
// and survives.
func (env *Env) reset() {
	for p := range env.In {
		env.In[p] = nil
	}
	for p := range env.out {
		env.out[p] = nil
	}
	env.injection.clear()
	env.pendingRetx = env.pendingRetx[:0]
	for _, c := range env.downCredits {
		if c != nil {
			c.Reset()
		}
	}
}
