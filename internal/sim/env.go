package sim

import (
	"fmt"
	"math/bits"

	"dxbar/internal/buffer"
	"dxbar/internal/energy"
	"dxbar/internal/events"
	"dxbar/internal/flit"
	"dxbar/internal/stats"
	"dxbar/internal/topology"
	"dxbar/internal/traffic"
)

// Env is a router's complete view of the network: its input latches, output
// latches, downstream credit counters, injection queue and the shared
// meter/collector. The engine owns and wires Envs; router implementations
// receive one at construction.
type Env struct {
	engine *Engine
	// Node is this router's node index.
	Node int
	// In holds the flit latched on each cardinal input port this cycle
	// (nil = none). The router must consume every entry during Step. InMask
	// mirrors it (bit p set = In[p] != nil, maintained by the engine's land
	// loop) so gather loops visit only occupied latches; a router that
	// consumes In through the mask clears it.
	In     [flit.NumLinkPorts]*flit.Flit
	InMask uint8

	// out holds the flits launched this cycle; outMask mirrors it as a
	// bitmask (bit p set = out[p] != nil) so the engine's link phase can skip
	// idle routers with one load instead of five.
	out     [flit.NumPorts]*flit.Flit
	outMask uint8

	// portMask caches the node's cardinal link bitmask; blockedMask tracks
	// output ports whose downstream credits are exhausted (bit maintained at
	// Consume time in Send and at maturation time in tickCredits, the only
	// two places Available changes mid-run); creditTickMask tracks counters
	// with returns in flight (set by the upstream Return closure), so the
	// per-cycle credit sweep touches only live pipelines.
	portMask       uint8
	blockedMask    uint8
	creditTickMask uint8

	// neighbors caches the node reached through each cardinal output port
	// (-1 = no link), so look-ahead sends skip the mesh arithmetic.
	neighbors [flit.NumLinkPorts]int32

	// downCredits[p] tracks free buffer space at the neighbour reached
	// through output port p (nil when bufferless or no link).
	downCredits [flit.NumLinkPorts]*buffer.Credits
	// upCredits[p] is the neighbour counter replenished when a flit that
	// arrived through input port p frees its slot (nil when bufferless or no
	// link); upOwner/upBit locate the bit to set in that neighbour's
	// creditTickMask. Plain data instead of a closure keeps ReturnCredit
	// direct-call inlinable on the hot path.
	upCredits [flit.NumLinkPorts]*buffer.Credits
	upOwner   [flit.NumLinkPorts]*Env
	upBit     [flit.NumLinkPorts]uint8

	// nbrEnv[p] is the Env reached through output port p (nil when the link
	// does not exist), and nbrIn[p] the input-port index there — the land
	// loop's per-link lookups resolved once at wiring time instead of two
	// dependent slice indexes per landed flit per cycle.
	nbrEnv [flit.NumLinkPorts]*Env
	nbrIn  [flit.NumLinkPorts]flit.Port

	injection flitDeque
	// pendingSpecs holds generated packets not yet materialized into flits
	// (see specDeque / topUpInjection).
	pendingSpecs specDeque
	bufferDepth  int
	creditDelay  int

	// meter, coll and rec are what this node's router writes through: the
	// engine's masters in sequential mode, or the owning shard's scratch
	// meter/collector and a per-env event stage in sharded mode (see
	// Engine.wireCollectors). Routers never see the difference.
	meter *energy.Meter
	coll  *stats.Collector
	rec   *events.Recorder

	// shard is the owning shard in sharded mode (nil = sequential). When
	// set, ReturnCredit and ScheduleRetransmit stage instead of applying —
	// the barrier replays them so no worker writes cross-shard state.
	shard *shard

	// pendingRetx holds retransmissions staged during the parallel router
	// phase, drained into the event wheel in node order at the barrier.
	pendingRetx []stagedRetx
}

func newEnv(e *Engine, node, bufferDepth, creditDelay int) *Env {
	env := &Env{
		engine: e, Node: node,
		bufferDepth: bufferDepth, creditDelay: creditDelay,
		portMask: e.mesh.PortMask(node),
	}
	for p := flit.North; p <= flit.West; p++ {
		env.neighbors[p] = int32(e.mesh.Neighbor(node, p))
	}
	// Prime the spec ring past the depths a below-saturation backlog reaches:
	// without this, rare backlog spikes double the ring mid-run (the residual
	// fraction-of-an-alloc per cycle the zero-alloc tests would flag). Above
	// saturation the backlog is unbounded and the ring grows regardless —
	// that regime is outside the steady-state guarantee.
	env.pendingSpecs.prime(64)
	return env
}

// Neighbor returns the node reached through cardinal output port p (-1 when
// the link does not exist) — a cached-array load, for router hot paths.
func (env *Env) Neighbor(p flit.Port) int { return int(env.neighbors[p]) }

// createCredits instantiates this node's downstream credit counters (first
// wiring pass — must run for every env before wireCredits).
func (env *Env) createCredits() {
	if env.bufferDepth <= 0 {
		return
	}
	m := env.engine.mesh
	slab := env.engine.creditSlab
	for p := flit.North; p <= flit.West; p++ {
		if m.HasPort(env.Node, p) {
			env.downCredits[p] = &slab[env.Node*flit.NumLinkPorts+int(p)]
		}
	}
}

// wireCredits connects the upstream credit-return closures (second wiring
// pass — every env's counters exist by now).
func (env *Env) wireCredits() {
	if env.bufferDepth <= 0 {
		return
	}
	m := env.engine.mesh
	for p := flit.North; p <= flit.West; p++ {
		nb := m.Neighbor(env.Node, p)
		if nb == -1 {
			continue
		}
		// A flit arriving on my input port p came through the neighbour's
		// opposite output port; returning a credit must replenish *that*
		// counter.
		counter := env.engine.envs[nb].downCredits[p.Opposite()]
		if counter != nil {
			env.upCredits[p] = counter
			env.upOwner[p] = env.engine.envs[nb]
			env.upBit[p] = uint8(1) << uint(p.Opposite())
		}
	}
}

// Mesh returns the topology.
func (env *Env) Mesh() *topology.Mesh { return env.engine.mesh }

// Meter returns the energy meter this router records into (the engine's in
// sequential mode, the shard's scratch in sharded mode — absorbed into the
// engine's at every cycle barrier).
func (env *Env) Meter() *energy.Meter { return env.meter }

// Stats returns the statistics collector this router records into (the
// engine's, or the shard's scratch — see Meter).
func (env *Env) Stats() *stats.Collector { return env.coll }

// Events returns the flight recorder this router records into — nil when
// runtime event tracing is off, which every recorder method tolerates, so
// routers record unconditionally. In sharded mode this is the env's private
// stage, drained into the master recorder in node order at the barrier.
func (env *Env) Events() *events.Recorder { return env.rec }

// DiagFaultManifest notifies the run-health monitor that this node's
// injected fault manifested at the given cycle — the start of the BIST
// detection-latency window. No-op without a monitor; safe from the router
// phase (shard workers write disjoint per-node state).
func (env *Env) DiagFaultManifest(cycle uint64) {
	env.engine.mon.FaultManifested(env.Node, cycle)
}

// DiagFaultDetected notifies the run-health monitor that this node's fault
// was detected, closing the latency window opened by DiagFaultManifest.
func (env *Env) DiagFaultDetected(cycle uint64) {
	env.engine.mon.FaultDetected(env.Node, cycle)
}

// HasLink reports whether output port p leads to a neighbour (Local always
// exists).
func (env *Env) HasLink(p flit.Port) bool {
	if p == flit.Local {
		return true
	}
	return env.engine.mesh.HasPort(env.Node, p)
}

// CanSend reports whether the router may launch a flit through output port
// p this cycle: the port must exist, be free, and (for credited designs)
// have a downstream credit. Local ejection never needs credits.
func (env *Env) CanSend(p flit.Port) bool {
	if !env.HasLink(p) || env.out[p] != nil {
		return false
	}
	if p == flit.Local {
		return true
	}
	if c := env.downCredits[p]; c != nil {
		return c.CanSend()
	}
	return true
}

// Send launches f through output port p (the flit's ST completes this
// cycle; LT happens next cycle). It consumes a downstream credit on
// credited links and computes the flit's look-ahead route for the next
// router via the caller-provided route (already stored in f.Route).
func (env *Env) Send(p flit.Port, f *flit.Flit) {
	if p != flit.Local && env.portMask&(1<<uint(p)) == 0 {
		panic(fmt.Sprintf("sim: node %d sending through missing port %s", env.Node, p))
	}
	if env.out[p] != nil {
		panic(fmt.Sprintf("sim: node %d output %s already driven", env.Node, p))
	}
	if p != flit.Local {
		if c := env.downCredits[p]; c != nil {
			c.Consume()
			if !c.CanSend() {
				env.blockedMask |= 1 << uint(p)
			}
		}
	}
	env.out[p] = f
	env.outMask |= 1 << uint(p)
}

// SendableMask returns the bitmask of output ports the router may launch
// through this cycle — bit p set means CanSend(p) — over all five ports.
// Routers compute it once at the start of their Step and clear bits as they
// send, replacing a CanSend call (link test, latch test, credit test) per
// arbitration attempt with one bit test.
func (env *Env) SendableMask() uint8 {
	m := env.portMask &^ (env.outMask | env.blockedMask)
	if env.out[flit.Local] == nil {
		m |= 1 << uint(flit.Local)
	}
	return m
}

// FreeOutMask returns the bitmask of output ports that exist and are still
// undriven this cycle (bit p set = HasLink(p) && OutputFree(p), plus Local) —
// the credit-blind companion of SendableMask for deflection paths, which may
// use a link regardless of downstream buffer space.
func (env *Env) FreeOutMask() uint8 {
	m := env.portMask &^ env.outMask
	if env.out[flit.Local] == nil {
		m |= 1 << uint(flit.Local)
	}
	return m
}

// OutputFree reports whether output latch p is still undriven this cycle.
func (env *Env) OutputFree(p flit.Port) bool { return env.out[p] == nil }

// ReturnCredit hands one credit back to the upstream neighbour feeding
// input port p (call when a flit that arrived through p frees its buffer
// slot, or immediately when it bypasses buffering entirely). In sharded
// mode the return is staged and applied at the cycle barrier: the upstream
// counter may belong to another shard, and since a returned credit rides
// the delay pipeline and only becomes visible at the post-link-phase Tick,
// barrier-time application is observationally identical to the sequential
// engine's mid-phase application.
func (env *Env) ReturnCredit(p flit.Port) {
	c := env.upCredits[p]
	if c == nil {
		return
	}
	if s := env.shard; s != nil {
		s.creditReturns = append(s.creditReturns, stagedCredit{env: env, port: p})
		return
	}
	c.Return()
	env.upOwner[p].creditTickMask |= env.upBit[p]
}

// applyReturn performs the staged credit return for input port p (barrier
// replay in sharded mode — same effect as the sequential direct path).
func (env *Env) applyReturn(p flit.Port) {
	env.upCredits[p].Return()
	env.upOwner[p].creditTickMask |= env.upBit[p]
}

// DownstreamCredits exposes the credit counter for output port p (nil when
// bufferless); routers use it for availability checks in tests.
func (env *Env) DownstreamCredits(p flit.Port) *buffer.Credits {
	if !p.IsCardinal() {
		return nil
	}
	return env.downCredits[p]
}

// InjectionHead returns the oldest waiting injection flit (nil if none).
func (env *Env) InjectionHead() *flit.Flit {
	return env.injection.front()
}

// ConsumeInjection removes the injection-queue head; the router calls it
// after successfully switching the head flit. The flit's network entry time
// is stamped for statistics.
func (env *Env) ConsumeInjection(cycle uint64) *flit.Flit {
	if env.injection.len() == 0 {
		panic("sim: ConsumeInjection on empty queue")
	}
	f := env.injection.popFront()
	f.EnqueueCycle = cycle
	env.rec.Record(cycle, events.Inject, env.Node, flit.Local,
		f.PacketID, f.ID, int32(cycle-f.InjectionCycle))
	return f
}

// ScheduleRetransmit asks the engine to re-enqueue f at its source after
// delay cycles (see Engine.ScheduleRetransmit). In sharded mode the wheel
// insertion is staged per-env and replayed in node order at the barrier, so
// the wheel's delivery order matches the sequential engine's; the
// Retransmit event is recorded into the env's stage at call time so it
// stays interleaved with the router's other events.
func (env *Env) ScheduleRetransmit(f *flit.Flit, delay uint64) {
	if env.shard == nil {
		env.engine.ScheduleRetransmit(f, delay)
		return
	}
	if delay == 0 {
		delay = 1
	}
	env.rec.Record(env.engine.cycle, events.Retransmit, int(f.Src), flit.Invalid,
		f.PacketID, f.ID, int32(delay))
	env.pendingRetx = append(env.pendingRetx, stagedRetx{f: f, delay: delay})
	env.shard.retx++
}

func (env *Env) pushBackInjection(f *flit.Flit)  { env.injection.pushBack(f) }
func (env *Env) pushFrontInjection(f *flit.Flit) { env.injection.pushFront(f) }
func (env *Env) pushSpec(s traffic.PacketSpec)   { env.pendingSpecs.pushBack(s) }
func (env *Env) injectionLen() int               { return env.injection.len() + env.pendingSpecs.flits }

// injectionSlack is the minimum number of materialized flits topUpInjection
// keeps at the front of the injection deque while specs are pending. Routers
// inject at most one flit per cycle, so any value >= 1 preserves behaviour;
// a little slack keeps the top-up loop off most cycles.
const injectionSlack = 8

// topUpInjection materializes queued packet specs (whole packets, FIFO)
// until the injection deque holds at least injectionSlack flits or no specs
// remain. It runs in the engine's single-threaded generation phase, so the
// shared flit pool is never touched concurrently by the parallel router
// phase — routers only ever pop already-materialized flits.
func (env *Env) topUpInjection(pool *flit.Pool) {
	for env.injection.len() < injectionSlack && env.pendingSpecs.len() > 0 {
		spec := env.pendingSpecs.popFront()
		for i := uint16(0); i < spec.NumFlits; i++ {
			env.injection.pushBack(spec.MaterializeFlit(pool, i))
		}
	}
}

// creditOccupancy returns the number of downstream buffer slots this node's
// flow control currently holds: for each credited output link, the credits
// consumed and not yet usable again (occupied slots plus credits riding the
// return pipeline). 0 when bufferless.
func (env *Env) creditOccupancy() int {
	total := 0
	for _, c := range env.downCredits {
		if c != nil {
			total += env.bufferDepth - c.Available()
		}
	}
	return total
}

func (env *Env) tickCredits() {
	m := env.creditTickMask
	var still uint8
	for b := m; b != 0; b &= b - 1 {
		p := bits.TrailingZeros8(b)
		c := env.downCredits[p]
		c.Tick()
		if c.CanSend() {
			env.blockedMask &^= uint8(1) << uint(p)
		}
		if c.HasPending() {
			still |= uint8(1) << uint(p)
		}
	}
	env.creditTickMask = still
}

// reset clears all per-run state: latches, the injection queue and the
// credit counters (Engine.Reset). The credit wiring itself is topology-bound
// and survives.
func (env *Env) reset() {
	for p := range env.In {
		env.In[p] = nil
	}
	for p := range env.out {
		env.out[p] = nil
	}
	env.outMask = 0
	env.blockedMask = 0
	env.InMask = 0
	env.creditTickMask = 0
	env.injection.clear()
	env.pendingSpecs.clear()
	env.pendingRetx = env.pendingRetx[:0]
	for _, c := range env.downCredits {
		if c != nil {
			c.Reset()
		}
	}
}
