package sim

import (
	"testing"

	"dxbar/internal/energy"
	"dxbar/internal/flit"
	"dxbar/internal/stats"
	"dxbar/internal/topology"
	"dxbar/internal/traffic"
)

// passthrough is a trivial router that forwards every arrival East (or
// ejects at its destination) and injects whenever the East output is free.
// It exists to exercise the engine contract in isolation.
type passthrough struct{ env *Env }

func (r *passthrough) Step(cycle uint64) {
	env := r.env
	for p := flit.North; p <= flit.West; p++ {
		f := env.In[p]
		if f == nil {
			continue
		}
		env.In[p] = nil
		if int(f.Dst) == env.Node {
			env.Send(flit.Local, f)
			continue
		}
		if !env.CanSend(flit.East) {
			panic("passthrough test router has no East capacity")
		}
		env.ReturnCredit(p)
		env.Send(flit.East, f)
	}
	if f := env.InjectionHead(); f != nil && env.CanSend(flit.East) {
		env.ConsumeInjection(cycle)
		env.Send(flit.East, f)
	}
}

func testEngine(t *testing.T, src Source, depth int) (*Engine, *stats.Collector, *energy.Meter) {
	t.Helper()
	mesh := topology.MustMesh(4, 4)
	coll := stats.NewCollector(mesh.Nodes(), 0, 10000)
	meter := energy.NewMeter()
	eng, err := New(Config{Mesh: mesh, Meter: meter, Stats: coll, Source: src, BufferDepth: depth},
		func(env *Env) Router { return &passthrough{env: env} })
	if err != nil {
		t.Fatal(err)
	}
	return eng, coll, meter
}

// oneShot injects a single 1-flit packet at a fixed node/cycle.
type oneShot struct {
	node     int
	dst      int
	at       uint64
	injected bool
}

func (s *oneShot) Generate(node int, cycle uint64) []*traffic.PacketSpec {
	if s.injected || node != s.node || cycle != s.at {
		return nil
	}
	s.injected = true
	return []*traffic.PacketSpec{{ID: 1, Src: s.node, Dst: s.dst, NumFlits: 1, Cycle: cycle}}
}

func TestHopTakesTwoCycles(t *testing.T) {
	// Node 0 -> node 1 is one hop East. Injection at cycle 0: ST at cycle
	// 0, LT at cycle 1, arrival+eject ST at cycle 2.
	src := &oneShot{node: 0, dst: 1, at: 0}
	eng, coll, _ := testEngine(t, src, 0)
	eng.Run(5)
	r := coll.Results()
	if r.Packets != 1 {
		t.Fatalf("packets = %d, want 1", r.Packets)
	}
	if r.AvgLatency != 2 {
		t.Errorf("one-hop latency = %v cycles, want 2 (ST+LT per hop)", r.AvgLatency)
	}
}

func TestMultiHopLatencyScales(t *testing.T) {
	// Node 0 -> node 3 is three hops East: latency 3*2 = 6.
	src := &oneShot{node: 0, dst: 3, at: 0}
	eng, coll, _ := testEngine(t, src, 0)
	eng.Run(10)
	r := coll.Results()
	if r.Packets != 1 || r.AvgLatency != 6 {
		t.Errorf("three-hop latency = %v (packets %d), want 6", r.AvgLatency, r.Packets)
	}
	if r.AvgHops != 3 {
		t.Errorf("hops = %v, want 3", r.AvgHops)
	}
}

func TestLinkEnergyCharged(t *testing.T) {
	src := &oneShot{node: 0, dst: 2, at: 0}
	eng, _, meter := testEngine(t, src, 0)
	eng.Run(10)
	c := meter.Snapshot()
	if c.LinkTraversals != 2 {
		t.Errorf("link traversals = %d, want 2", c.LinkTraversals)
	}
}

func TestEjectionAtWrongNodePanics(t *testing.T) {
	mesh := topology.MustMesh(4, 4)
	coll := stats.NewCollector(mesh.Nodes(), 0, 100)
	// A router that ejects everything locally, even misrouted flits.
	eng, err := New(Config{Mesh: mesh, Meter: energy.NewMeter(), Stats: coll,
		Source: &oneShot{node: 0, dst: 5, at: 0}},
		func(env *Env) Router {
			return routerFunc(func(cycle uint64) {
				if f := env.InjectionHead(); f != nil {
					env.ConsumeInjection(cycle)
					env.Send(flit.Local, f) // wrong: dst is elsewhere
				}
				for p := flit.North; p <= flit.West; p++ {
					env.In[p] = nil
				}
			})
		})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("ejecting at the wrong node must panic")
		}
	}()
	eng.Run(3)
}

// routerFunc adapts a closure to Router.
type routerFunc func(cycle uint64)

func (f routerFunc) Step(cycle uint64) { f(cycle) }

func TestUnconsumedInputPanics(t *testing.T) {
	mesh := topology.MustMesh(4, 4)
	coll := stats.NewCollector(mesh.Nodes(), 0, 100)
	eng, err := New(Config{Mesh: mesh, Meter: energy.NewMeter(), Stats: coll,
		Source: &oneShot{node: 0, dst: 3, at: 0}},
		func(env *Env) Router {
			return routerFunc(func(cycle uint64) {
				// Forward injections but never consume arrivals.
				if f := env.InjectionHead(); f != nil && env.CanSend(flit.East) {
					env.ConsumeInjection(cycle)
					env.Send(flit.East, f)
				}
			})
		})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("leaving an input latch unconsumed must panic")
		}
	}()
	eng.Run(5)
}

func TestScheduleRetransmitReinjects(t *testing.T) {
	src := &oneShot{node: 0, dst: 1, at: 0}
	mesh := topology.MustMesh(4, 4)
	coll := stats.NewCollector(mesh.Nodes(), 0, 1000)
	dropped := false
	if _, err := New(Config{Mesh: mesh, Meter: energy.NewMeter(), Stats: coll, Source: src}, nil); err == nil {
		t.Fatal("nil factory must be rejected")
	}
	// Build a network whose node 0 drops the first flit and retransmits.
	eng2, err := New(Config{Mesh: mesh, Meter: energy.NewMeter(), Stats: coll, Source: src},
		func(env *Env) Router {
			return routerFunc(func(cycle uint64) {
				for p := flit.North; p <= flit.West; p++ {
					f := env.In[p]
					if f == nil {
						continue
					}
					env.In[p] = nil
					if int(f.Dst) == env.Node {
						env.Send(flit.Local, f)
					} else if env.CanSend(flit.East) {
						env.Send(flit.East, f)
					}
				}
				if f := env.InjectionHead(); f != nil {
					if !dropped {
						dropped = true
						env.ConsumeInjection(cycle)
						env.ScheduleRetransmit(f, 3)
						return
					}
					if env.CanSend(flit.East) {
						env.ConsumeInjection(cycle)
						env.Send(flit.East, f)
					}
				}
			})
		})
	if err != nil {
		t.Fatal(err)
	}
	eng2.Run(20)
	r := coll.Results()
	if r.Packets != 1 {
		t.Fatalf("retransmitted packet not delivered (packets=%d)", r.Packets)
	}
	if r.RetransmitsPerPacket != 1 {
		t.Errorf("retransmits = %v, want 1", r.RetransmitsPerPacket)
	}
}

func TestQueuedFlits(t *testing.T) {
	// A source that floods node 0 with traffic its router can't all send.
	flood := sourceFunc(func(node int, cycle uint64) []*traffic.PacketSpec {
		if node != 0 || cycle > 10 {
			return nil
		}
		return []*traffic.PacketSpec{
			{ID: cycle*2 + 1, Src: 0, Dst: 3, NumFlits: 1, Cycle: cycle},
			{ID: cycle*2 + 2, Src: 0, Dst: 3, NumFlits: 1, Cycle: cycle},
		}
	})
	eng, _, _ := testEngine(t, flood, 0)
	eng.Run(5)
	if eng.QueuedFlits() == 0 {
		t.Error("expected backlog in injection queue")
	}
	eng.Run(100)
	if eng.QueuedFlits() != 0 {
		t.Error("backlog must drain")
	}
}

type sourceFunc func(node int, cycle uint64) []*traffic.PacketSpec

func (f sourceFunc) Generate(node int, cycle uint64) []*traffic.PacketSpec { return f(node, cycle) }

func TestRunUntil(t *testing.T) {
	src := &oneShot{node: 0, dst: 1, at: 0}
	eng, coll, _ := testEngine(t, src, 0)
	ok := eng.RunUntil(func() bool { return coll.Results().Packets == 1 }, 100)
	if !ok {
		t.Error("RunUntil must observe the delivery")
	}
	if eng.Cycle() == 0 || eng.Cycle() > 10 {
		t.Errorf("unexpected cycle count %d", eng.Cycle())
	}
	if eng.RunUntil(func() bool { return false }, 5) {
		t.Error("RunUntil with false predicate must time out")
	}
}

func TestSinkCallback(t *testing.T) {
	src := &oneShot{node: 0, dst: 1, at: 0}
	mesh := topology.MustMesh(4, 4)
	coll := stats.NewCollector(mesh.Nodes(), 0, 1000)
	var got []flit.Packet
	snk := sinkFunc(func(p flit.Packet, cycle uint64) { got = append(got, p) })
	eng, err := New(Config{Mesh: mesh, Meter: energy.NewMeter(), Stats: coll, Source: src, Sink: snk},
		func(env *Env) Router { return &passthrough{env: env} })
	if err != nil {
		t.Fatal(err)
	}
	eng.Run(10)
	if len(got) != 1 || got[0].Dst != 1 {
		t.Errorf("sink saw %v", got)
	}
}

type sinkFunc func(p flit.Packet, cycle uint64)

func (f sinkFunc) Deliver(p flit.Packet, cycle uint64) { f(p, cycle) }

func TestNewValidatesConfig(t *testing.T) {
	if _, err := New(Config{}, func(env *Env) Router { return nil }); err == nil {
		t.Error("missing mesh/meter/stats must error")
	}
}

func TestCreditsWiredBothDirections(t *testing.T) {
	mesh := topology.MustMesh(4, 4)
	coll := stats.NewCollector(mesh.Nodes(), 0, 1000)
	eng, err := New(Config{Mesh: mesh, Meter: energy.NewMeter(), Stats: coll, BufferDepth: 4},
		func(env *Env) Router {
			return routerFunc(func(cycle uint64) {
				for p := flit.North; p <= flit.West; p++ {
					env.In[p] = nil
				}
			})
		})
	if err != nil {
		t.Fatal(err)
	}
	// Every cardinal port with a link must have a credit counter, and
	// consuming at one end must be returnable from the other.
	for n := 0; n < mesh.Nodes(); n++ {
		env := eng.Env(n)
		for p := flit.North; p <= flit.West; p++ {
			hasLink := mesh.HasPort(n, p)
			c := env.DownstreamCredits(p)
			if hasLink && c == nil {
				t.Fatalf("node %d port %s missing credits", n, p)
			}
			if !hasLink && c != nil {
				t.Fatalf("node %d port %s has credits without a link", n, p)
			}
		}
	}
	// Spot-check the return path: node 5 consumes a credit toward node 6
	// (East); node 6 returning a credit on its West input replenishes it.
	c := eng.Env(5).DownstreamCredits(flit.East)
	c.Consume()
	if c.Available() != 3 {
		t.Fatal("consume failed")
	}
	eng.Env(6).ReturnCredit(flit.West)
	eng.Run(1) // ticks the pipelines
	if c.Available() != 4 {
		t.Errorf("credit did not return across the link (available=%d)", c.Available())
	}
}
