package sim

import (
	"dxbar/internal/flit"
	"dxbar/internal/traffic"
)

// flitDeque is a growable ring deque backing the per-node injection queue.
// Generation pushes at the back, retransmissions push at the front, routers
// pop the front — all allocation-free once the ring has grown to the queue's
// high-water mark (the old slice-based queue reallocated on every front
// push).
type flitDeque struct {
	buf  []*flit.Flit
	head int
	n    int
}

func (q *flitDeque) len() int { return q.n }

// front returns the oldest element without removing it (nil when empty).
func (q *flitDeque) front() *flit.Flit {
	if q.n == 0 {
		return nil
	}
	return q.buf[q.head]
}

func (q *flitDeque) pushBack(f *flit.Flit) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)&(len(q.buf)-1)] = f
	q.n++
}

func (q *flitDeque) pushFront(f *flit.Flit) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.head = (q.head - 1) & (len(q.buf) - 1)
	q.buf[q.head] = f
	q.n++
}

func (q *flitDeque) popFront() *flit.Flit {
	f := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	return f
}

// clear empties the deque, dropping references so flits can be collected or
// repooled (Engine.Reset).
func (q *flitDeque) clear() {
	for i := range q.buf {
		q.buf[i] = nil
	}
	q.head, q.n = 0, 0
}

// grow doubles the ring (capacity stays a power of two for mask indexing).
func (q *flitDeque) grow() {
	size := len(q.buf) * 2
	if size == 0 {
		size = 16
	}
	next := make([]*flit.Flit, size)
	for i := 0; i < q.n; i++ {
		next[i] = q.buf[(q.head+i)&(len(q.buf)-1)]
	}
	q.buf = next
	q.head = 0
}

// specDeque is a growable ring of packet specs awaiting materialization.
// Generated packets are queued as compact specs and turned into pooled flits
// only when the injection deque runs low (Env.topUpInjection), so the live
// flit population is bounded by the in-network capacity plus a small slack —
// not by the injection backlog, which grows without bound above saturation.
type specDeque struct {
	buf  []traffic.PacketSpec
	head int
	n    int
	// flits is the total flit count across queued specs (injectionLen and
	// the engine's drain condition count unmaterialized flits too).
	flits int
}

func (q *specDeque) len() int { return q.n }

func (q *specDeque) pushBack(s traffic.PacketSpec) {
	if q.n == len(q.buf) {
		q.growSpec()
	}
	q.buf[(q.head+q.n)&(len(q.buf)-1)] = s
	q.n++
	q.flits += int(s.NumFlits)
}

func (q *specDeque) popFront() traffic.PacketSpec {
	s := q.buf[q.head]
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	q.flits -= int(s.NumFlits)
	return s
}

func (q *specDeque) clear() {
	q.head, q.n, q.flits = 0, 0, 0
}

// prime preallocates the ring to hold n specs (rounded up to a power of two)
// so steady-state backlogs below that depth never trigger growSpec. Below
// saturation the spec queue stays shallow but its high-water mark creeps up
// over millions of cycles; priming moves those late doublings to
// construction time, which the zero-alloc steady-state guarantee requires.
func (q *specDeque) prime(n int) {
	size := 1
	for size < n {
		size *= 2
	}
	if size > len(q.buf) {
		q.buf = make([]traffic.PacketSpec, size)
		q.head = 0
	}
}

func (q *specDeque) growSpec() {
	size := len(q.buf) * 2
	if size == 0 {
		size = 16
	}
	next := make([]traffic.PacketSpec, size)
	for i := 0; i < q.n; i++ {
		next[i] = q.buf[(q.head+i)&(len(q.buf)-1)]
	}
	q.buf = next
	q.head = 0
}
