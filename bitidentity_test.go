package dxbar

import (
	"fmt"
	"reflect"
	"testing"
)

// runArbPair executes the same config on the bit-parallel fast paths and on
// the branchy reference paths and fails the test unless the full Results —
// throughput, latency, energy counts, event trace, per-router matrices,
// time series — are bit-identical. This is the tentpole's correctness
// contract: the bitmask arbitration and SoA switching cores are drop-in
// replacements for the original branchy code, grant for grant.
func runArbPair(t *testing.T, base Config) {
	t.Helper()
	ref := base
	ref.ReferenceArbitration = true
	want, err := Run(ref)
	if err != nil {
		t.Fatal(err)
	}
	fast := base
	fast.ReferenceArbitration = false
	got, err := Run(fast)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("fast arbitration differs from reference\nref:  %+v\nfast: %+v", want, got)
	}
}

// TestArbitrationBitIdentityAllDesigns sweeps every design and several seeds
// with event tracing on, so the comparison covers per-flit event ordering,
// not just aggregate counters. Loads sit near each design's interesting
// region (SCARAB past saturation exercises drop/retransmit arbitration).
func TestArbitrationBitIdentityAllDesigns(t *testing.T) {
	for _, d := range AllDesigns {
		for _, seed := range []int64{3, 7, 42} {
			base := Config{
				Design: d, Width: 8, Height: 8, Pattern: "UR", Load: 0.3,
				WarmupCycles: 300, MeasureCycles: 1200, Seed: seed,
				EventTrace: 512,
			}
			t.Run(fmt.Sprintf("%s/seed%d", d, seed), func(t *testing.T) {
				runArbPair(t, base)
			})
		}
	}
}

// TestArbitrationBitIdentityPatterns crosses the fast paths with adversarial
// traffic patterns: transpose-style permutations produce sustained
// contention on specific ports, butterfly and neighbour patterns vary the hop-distance mix.
func TestArbitrationBitIdentityPatterns(t *testing.T) {
	for _, d := range []Design{DesignDXbar, DesignUnified, DesignFlitBless, DesignAFC} {
		for _, pat := range []string{"MT", "BF", "NB"} {
			base := Config{
				Design: d, Width: 8, Height: 8, Pattern: pat, Load: 0.25,
				WarmupCycles: 200, MeasureCycles: 1000, Seed: 11,
			}
			t.Run(fmt.Sprintf("%s/%s", d, pat), func(t *testing.T) {
				runArbPair(t, base)
			})
		}
	}
}

// TestArbitrationBitIdentityFaultSweep covers the fault-injection
// configurations on the designs that accept them: broken crossbars and
// single crosspoints reroute flits through the secondary fabric, exercising
// the masked-request construction under port sets that change mid-run.
func TestArbitrationBitIdentityFaultSweep(t *testing.T) {
	for _, d := range []Design{DesignDXbar, DesignUnified} {
		for _, gran := range []string{"crossbar", "crosspoint"} {
			for _, frac := range []float64{0.5, 1.0} {
				base := Config{
					Design: d, Width: 8, Height: 8, Pattern: "UR", Load: 0.25,
					WarmupCycles: 300, MeasureCycles: 1000, Seed: 11,
					FaultFraction: frac, FaultGranularity: gran,
					TrackUtilization: true, SampleInterval: 128,
					EventTrace: 256,
				}
				t.Run(fmt.Sprintf("%s/%s/%.2f", d, gran, frac), func(t *testing.T) {
					runArbPair(t, base)
				})
			}
		}
	}
}

// TestArbitrationBitIdentitySharded crosses the two orthogonal determinism
// contracts: the fast paths on the sharded engine must match the reference
// paths on the sequential engine.
func TestArbitrationBitIdentitySharded(t *testing.T) {
	for _, d := range AllDesigns {
		base := Config{
			Design: d, Width: 8, Height: 8, Pattern: "UR", Load: 0.3,
			WarmupCycles: 200, MeasureCycles: 800, Seed: 7,
		}
		t.Run(string(d), func(t *testing.T) {
			ref := base
			ref.ReferenceArbitration = true
			ref.Shards = 1
			want, err := Run(ref)
			if err != nil {
				t.Fatal(err)
			}
			fast := base
			fast.ReferenceArbitration = false
			fast.Shards = 4
			got, err := Run(fast)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Errorf("%s: sharded fast run differs from sequential reference", d)
			}
		})
	}
}

// TestArbitrationBitIdentityVariants pins the DXbar-specific configuration
// axes: west-first routing (a different productive-port set per hop), static
// port-order arbitration (the age-free ablation), a non-default fairness
// threshold (flips the unified fabric's priority more often) and a deeper
// secondary buffer.
func TestArbitrationBitIdentityVariants(t *testing.T) {
	variants := map[string]Config{
		"wf-routing": {
			Design: DesignDXbar, Routing: "WF", Width: 8, Height: 8,
			Pattern: "UR", Load: 0.3, WarmupCycles: 200, MeasureCycles: 1000, Seed: 5,
		},
		"port-order": {
			Design: DesignDXbar, Width: 8, Height: 8, Pattern: "UR", Load: 0.3,
			WarmupCycles: 200, MeasureCycles: 1000, Seed: 5, PortOrderArbitration: true,
		},
		"fairness-1": {
			Design: DesignUnified, Width: 8, Height: 8, Pattern: "MT", Load: 0.3,
			WarmupCycles: 200, MeasureCycles: 1000, Seed: 5, FairnessThreshold: 1,
		},
		"deep-buffers": {
			Design: DesignDXbar, Width: 8, Height: 8, Pattern: "UR", Load: 0.35,
			WarmupCycles: 200, MeasureCycles: 1000, Seed: 5, BufferDepth: 8,
		},
		"multi-flit": {
			Design: DesignSCARAB, Width: 8, Height: 8, Pattern: "UR", Load: 0.25,
			WarmupCycles: 200, MeasureCycles: 1000, Seed: 5, FlitsPerPacket: 4,
		},
	}
	for name, cfg := range variants {
		t.Run(name, func(t *testing.T) {
			runArbPair(t, cfg)
		})
	}
}
