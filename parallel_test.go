package dxbar

import (
	"reflect"
	"testing"
)

func TestRunManyMatchesSequential(t *testing.T) {
	configs := []Config{
		{Design: DesignDXbar, Pattern: "UR", Load: 0.2, WarmupCycles: 300, MeasureCycles: 1000, Seed: 1},
		{Design: DesignFlitBless, Pattern: "MT", Load: 0.3, WarmupCycles: 300, MeasureCycles: 1000, Seed: 2},
		{Design: DesignBuffered4, Pattern: "TOR", Load: 0.25, WarmupCycles: 300, MeasureCycles: 1000, Seed: 3},
		{Design: DesignUnified, Pattern: "CP", Load: 0.2, WarmupCycles: 300, MeasureCycles: 1000, Seed: 4},
	}
	par, err := RunMany(configs, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, cfg := range configs {
		seq, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(par[i], seq) {
			t.Errorf("config %d: parallel result differs from sequential\npar: %+v\nseq: %+v", i, par[i], seq)
		}
	}
}

func TestRunManyEmpty(t *testing.T) {
	res, err := RunMany(nil, 4)
	if err != nil || len(res) != 0 {
		t.Errorf("empty batch: %v, %v", res, err)
	}
}

func TestRunManyPropagatesError(t *testing.T) {
	configs := []Config{
		{Design: DesignDXbar, Pattern: "UR", Load: 0.1, WarmupCycles: 100, MeasureCycles: 100},
		{Design: "bogus", Load: 0.1},
	}
	if _, err := RunMany(configs, 2); err == nil {
		t.Error("error in one config must surface")
	}
}

func TestRunManyDefaultWorkers(t *testing.T) {
	configs := []Config{
		{Design: DesignDXbar, Pattern: "UR", Load: 0.1, WarmupCycles: 100, MeasureCycles: 200, Seed: 5},
	}
	res, err := RunMany(configs, 0)
	if err != nil || res[0].Packets == 0 {
		t.Errorf("default worker count failed: %v %v", res, err)
	}
}

func TestRunManySplashMatchesSequential(t *testing.T) {
	configs := []SplashConfig{
		{Design: DesignDXbar, Benchmark: "Water", Seed: 1},
		{Design: DesignFlitBless, Benchmark: "Water", Seed: 1},
	}
	par, err := RunManySplash(configs, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, cfg := range configs {
		seq, err := RunSplash(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if par[i] != seq {
			t.Errorf("splash config %d: parallel differs from sequential", i)
		}
	}
}
