package dxbar

import (
	"reflect"
	"strings"
	"testing"
)

func TestRunManyMatchesSequential(t *testing.T) {
	configs := []Config{
		{Design: DesignDXbar, Pattern: "UR", Load: 0.2, WarmupCycles: 300, MeasureCycles: 1000, Seed: 1},
		{Design: DesignFlitBless, Pattern: "MT", Load: 0.3, WarmupCycles: 300, MeasureCycles: 1000, Seed: 2},
		{Design: DesignBuffered4, Pattern: "TOR", Load: 0.25, WarmupCycles: 300, MeasureCycles: 1000, Seed: 3},
		{Design: DesignUnified, Pattern: "CP", Load: 0.2, WarmupCycles: 300, MeasureCycles: 1000, Seed: 4},
	}
	par, err := RunMany(configs, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, cfg := range configs {
		seq, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(par[i], seq) {
			t.Errorf("config %d: parallel result differs from sequential\npar: %+v\nseq: %+v", i, par[i], seq)
		}
	}
}

func TestRunManyEmpty(t *testing.T) {
	res, err := RunMany(nil, 4)
	if err != nil || len(res) != 0 {
		t.Errorf("empty batch: %v, %v", res, err)
	}
}

func TestRunManyPropagatesError(t *testing.T) {
	configs := []Config{
		{Design: DesignDXbar, Pattern: "UR", Load: 0.1, WarmupCycles: 100, MeasureCycles: 100},
		{Design: "bogus", Load: 0.1},
	}
	if _, err := RunMany(configs, 2); err == nil {
		t.Error("error in one config must surface")
	}
}

// TestRunManyJoinsAllErrors: every failed config contributes to the joined
// error and leaves a zero-valued result; good configs still complete.
func TestRunManyJoinsAllErrors(t *testing.T) {
	configs := []Config{
		{Design: "bogus1", Load: 0.1},
		{Design: DesignDXbar, Pattern: "UR", Load: 0.1, WarmupCycles: 100, MeasureCycles: 200, Seed: 5},
		{Design: "bogus2", Load: 0.1},
	}
	res, err := RunMany(configs, 2)
	if err == nil {
		t.Fatal("two bad configs must produce an error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "bogus1") || !strings.Contains(msg, "bogus2") {
		t.Errorf("joined error must mention every failure, got: %v", err)
	}
	if !reflect.DeepEqual(res[0], Result{}) || !reflect.DeepEqual(res[2], Result{}) {
		t.Error("failed configs must leave zero-valued results")
	}
	if res[1].Packets == 0 {
		t.Error("the good config must still run to completion")
	}
}

// TestRunManySingleWorkerReusesEngines: with one worker, every job after
// the first recycles the worker's engines via Engine.Reset. Results must be
// bit-identical to fresh runs — including a repeat of an earlier config
// (reset-to-same-config) and a design sharing the engine cache key with a
// different design (dxbar and unified both use depth-4 engines).
func TestRunManySingleWorkerReusesEngines(t *testing.T) {
	configs := []Config{
		{Design: DesignDXbar, Pattern: "UR", Load: 0.3, WarmupCycles: 300, MeasureCycles: 1000, Seed: 1},
		{Design: DesignUnified, Pattern: "UR", Load: 0.3, WarmupCycles: 300, MeasureCycles: 1000, Seed: 1},
		{Design: DesignSCARAB, Pattern: "TOR", Load: 0.2, WarmupCycles: 300, MeasureCycles: 1000, Seed: 2},
		{Design: DesignDXbar, Pattern: "UR", Load: 0.3, WarmupCycles: 300, MeasureCycles: 1000, Seed: 1},
	}
	got, err := RunMany(configs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, cfg := range configs {
		want, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Errorf("config %d (%s): reused-engine result differs from fresh run\ngot:  %+v\nwant: %+v",
				i, cfg.Design, got[i], want)
		}
	}
	if !reflect.DeepEqual(got[0], got[3]) {
		t.Error("identical configs through one reused engine must give identical results")
	}
}

func TestRunManyDefaultWorkers(t *testing.T) {
	configs := []Config{
		{Design: DesignDXbar, Pattern: "UR", Load: 0.1, WarmupCycles: 100, MeasureCycles: 200, Seed: 5},
	}
	res, err := RunMany(configs, 0)
	if err != nil || res[0].Packets == 0 {
		t.Errorf("default worker count failed: %v %v", res, err)
	}
}

func TestRunManySplashMatchesSequential(t *testing.T) {
	configs := []SplashConfig{
		{Design: DesignDXbar, Benchmark: "Water", Seed: 1},
		{Design: DesignFlitBless, Benchmark: "Water", Seed: 1},
	}
	par, err := RunManySplash(configs, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, cfg := range configs {
		seq, err := RunSplash(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if par[i] != seq {
			t.Errorf("splash config %d: parallel differs from sequential", i)
		}
	}
}
