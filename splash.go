package dxbar

import (
	"dxbar/internal/coherence"
)

// SplashConfig describes one closed-loop SPLASH-2 (substitute) run.
type SplashConfig struct {
	// Design and Routing as in Config.
	Design  Design
	Routing string
	// Benchmark is one of the nine profile names (SplashBenchmarks).
	Benchmark string
	// Width and Height give the mesh dimensions (default 8×8).
	Width, Height int
	// Seed drives the workload's deterministic randomness.
	Seed int64
	// MaxCycles aborts a run that fails to complete (default 3,000,000).
	MaxCycles uint64
	// DetailedCaches switches from the calibrated profile hit rates to
	// real set-associative L1/L2 caches (hit rates and writeback traffic
	// emerge from the benchmark's working set).
	DetailedCaches bool
}

// SplashResult summarizes one closed-loop run.
type SplashResult struct {
	// ExecutionCycles is the cycle at which the last processor finished
	// its memory-operation budget — the Fig. 9 metric.
	ExecutionCycles uint64
	// AvgEnergyNJ is the average network energy per delivered packet —
	// the Fig. 10 metric.
	AvgEnergyNJ float64
	// TotalEnergyNJ is the run's total network energy.
	TotalEnergyNJ float64
	// Packets is the number of protocol messages delivered.
	Packets uint64
	// AvgLatency is the mean packet network latency in cycles;
	// P50Latency/P99Latency/MaxLatency describe the tail of the same
	// distribution, and InFlightPackets counts protocol messages still in
	// the network when the run ended (non-zero only on aborted runs).
	AvgLatency      float64
	P50Latency      uint64
	P99Latency      uint64
	MaxLatency      uint64
	InFlightPackets uint64
	// Design, Routing and Benchmark echo the configuration.
	Design    Design
	Routing   string
	Benchmark string
}

// RunSplash executes one coherence-workload simulation to completion.
func RunSplash(c SplashConfig) (SplashResult, error) {
	return newRunner().runSplash(c)
}

// SplashBenchmarks lists the nine benchmark names in the paper's order.
func SplashBenchmarks() []string {
	profs := coherence.Profiles()
	names := make([]string, len(profs))
	for i, p := range profs {
		names[i] = p.Name
	}
	return names
}
