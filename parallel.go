package dxbar

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// onRunDone holds the batch-progress hook (see OnRunDone).
var onRunDone atomic.Pointer[func()]

// OnRunDone installs a process-wide hook invoked once after every completed
// RunMany / RunManySplash job, successful or failed — the sweep-progress
// source for the /progress endpoint and the CLI progress line (hooks
// typically close over a metrics.Progress and Add(1)). fn must be safe for
// concurrent calls from worker goroutines; nil removes the hook.
func OnRunDone(fn func()) {
	if fn == nil {
		onRunDone.Store(nil)
		return
	}
	onRunDone.Store(&fn)
}

// runDone fires the OnRunDone hook, if any.
func runDone() {
	if fn := onRunDone.Load(); fn != nil {
		(*fn)()
	}
}

// RunMany executes a batch of independent simulations on a worker pool and
// returns results in input order. workers <= 0 uses GOMAXPROCS. Each
// simulation is single-threaded and deterministic, so batch-level
// parallelism is the natural way to use many cores for sweeps; every figure
// generator routes through RunMany.
//
// Each worker goroutine owns one runner, so engines (and their flit pools,
// latches and router scratch) are recycled across the jobs it processes —
// the per-run allocation cost is paid once per worker, not once per config.
// Reuse does not change results: a recycled engine is bit-identical to a
// fresh one for the same config and seed.
//
// An error in one config aborts nothing — every run completes. Failed
// configs leave a zero-valued Result at their index, and all errors are
// combined with errors.Join (nil when every run succeeded); use
// errors.Is/As to inspect individual causes.
func RunMany(configs []Config, workers int) ([]Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(configs) {
		workers = len(configs)
	}
	results := make([]Result, len(configs))
	errs := make([]error, len(configs))
	if len(configs) == 0 {
		return results, nil
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := newRunner()
			for i := range jobs {
				results[i], errs[i] = r.run(configs[i])
				runDone()
			}
		}()
	}
	for i := range configs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	return results, errors.Join(errs...)
}

// RunManySplash is RunMany for the closed-loop coherence workloads: worker
// goroutines with per-worker engine reuse, zero-valued results for failed
// configs, and an errors.Join-combined error.
func RunManySplash(configs []SplashConfig, workers int) ([]SplashResult, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(configs) {
		workers = len(configs)
	}
	results := make([]SplashResult, len(configs))
	errs := make([]error, len(configs))
	if len(configs) == 0 {
		return results, nil
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := newRunner()
			for i := range jobs {
				results[i], errs[i] = r.runSplash(configs[i])
				runDone()
			}
		}()
	}
	for i := range configs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	return results, errors.Join(errs...)
}
