package dxbar

import (
	"runtime"
	"sync"
)

// RunMany executes a batch of independent simulations on a worker pool and
// returns results in input order. workers <= 0 uses GOMAXPROCS. Each
// simulation is single-threaded and deterministic, so batch-level
// parallelism is the natural way to use many cores for sweeps; every figure
// generator routes through RunMany.
//
// The first error aborts nothing — all runs complete — but only the first
// error encountered (in input order) is returned alongside the results.
func RunMany(configs []Config, workers int) ([]Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(configs) {
		workers = len(configs)
	}
	results := make([]Result, len(configs))
	errs := make([]error, len(configs))
	if len(configs) == 0 {
		return results, nil
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i], errs[i] = Run(configs[i])
			}
		}()
	}
	for i := range configs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// RunManySplash is RunMany for the closed-loop coherence workloads.
func RunManySplash(configs []SplashConfig, workers int) ([]SplashResult, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(configs) {
		workers = len(configs)
	}
	results := make([]SplashResult, len(configs))
	errs := make([]error, len(configs))
	if len(configs) == 0 {
		return results, nil
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i], errs[i] = RunSplash(configs[i])
			}
		}()
	}
	for i := range configs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}
