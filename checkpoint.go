package dxbar

// Checkpoint & resume: a run with Config.CheckpointInterval/CheckpointDir set
// periodically serializes its complete engine state — every flit in flight,
// injection backlogs, the retransmit wheel, credit pipelines, the source RNG
// position, stats/energy accumulators, recorder and monitor state — into an
// atomic-renamed file. Resume continues such a run bit-identically; Rewind
// re-runs a window from a checkpoint with the flight recorder widened, for
// post-mortem re-execution of an interesting region (a p99 outlier, an
// anomaly storm) at full trace detail without re-simulating from cycle 0.
//
// File format: one snapshot stream (internal/snapshot — magic, version, CRC)
// holding a "CKPT" section with the scrubbed run config as JSON, the
// warmup-boundary energy baseline, and the engine's own Snapshot stream as a
// nested byte string. The nesting keeps the engine encoding identical to what
// Engine.Snapshot writes, so the round-trip and fuzz suites exercise the same
// bytes the files carry.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"dxbar/internal/energy"
	"dxbar/internal/sim"
	"dxbar/internal/snapshot"
)

// DefaultCheckpointKeep is how many checkpoint files a run retains when
// Config.CheckpointKeep is 0.
const DefaultCheckpointKeep = 3

// checkpointPattern matches the files written by checkpointed runs.
const checkpointPattern = "ckpt-*.dxsn"

// Checkpoint is one decoded checkpoint file: the run configuration it was
// taken under, the cycle it captures, the energy baseline of the measurement
// window (meaningful once PastWarmup), and the engine snapshot itself.
type Checkpoint struct {
	// Config is the saved run configuration (defaults applied, live handles
	// scrubbed). Resume re-runs it verbatim; ResumeWith lets the caller
	// adjust observation-layer fields first.
	Config Config
	// Cycle is the engine cycle the checkpoint captures.
	Cycle uint64
	// PastWarmup reports whether the checkpoint lies at or beyond the warmup
	// boundary; Base is then the energy-meter snapshot taken at that boundary
	// (the subtrahend of the measurement window).
	PastWarmup bool
	Base       energy.Counts

	engine []byte
}

// scrubConfig drops the live attachments that are not configuration (and
// cannot marshal): the metrics registry, the progress tracker and the diag
// config with its logger/callbacks.
func scrubConfig(cfg Config) Config {
	cfg.Metrics = nil
	cfg.Progress = nil
	cfg.Diag = nil
	return cfg
}

// writeCheckpoint serializes one checkpoint file under dir, atomically:
// the stream is written to a temp file in the same directory and renamed into
// place, so a kill -9 at any instant leaves either the previous file set or
// the new one — never a torn file. After the rename, older checkpoints beyond
// keep are pruned. Returns the final path.
func writeCheckpoint(dir string, keep int, cfg Config, cyc uint64, pastWarmup bool, base energy.Counts, eng *sim.Engine) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	cfgJSON, err := json.Marshal(scrubConfig(cfg))
	if err != nil {
		return "", err
	}
	var engBuf bytes.Buffer
	if err := eng.Snapshot(&engBuf); err != nil {
		return "", err
	}

	tmp, err := os.CreateTemp(dir, "ckpt-*.tmp")
	if err != nil {
		return "", err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename

	w := snapshot.NewWriter(tmp)
	w.Tag("CKPT")
	w.U64(cyc)
	w.Bytes(cfgJSON)
	w.Bool(pastWarmup)
	w.U64(base.CrossbarTraversals)
	w.U64(base.LinkTraversals)
	w.U64(base.BufferWrites)
	w.U64(base.BufferReads)
	w.U64(base.NackHops)
	w.Bytes(engBuf.Bytes())
	if err := w.Close(); err != nil {
		tmp.Close()
		return "", err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return "", err
	}
	if err := tmp.Close(); err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("ckpt-%012d.dxsn", cyc))
	if err := os.Rename(tmp.Name(), path); err != nil {
		return "", err
	}
	pruneCheckpoints(dir, keep)
	return path, nil
}

// pruneCheckpoints removes all but the newest keep checkpoint files. Cycle
// numbers are zero-padded to fixed width, so lexical order is cycle order.
func pruneCheckpoints(dir string, keep int) {
	if keep <= 0 {
		keep = DefaultCheckpointKeep
	}
	paths, err := filepath.Glob(filepath.Join(dir, checkpointPattern))
	if err != nil || len(paths) <= keep {
		return
	}
	sort.Strings(paths)
	for _, p := range paths[:len(paths)-keep] {
		os.Remove(p)
	}
}

// LatestCheckpoint returns the newest checkpoint file under dir, or an error
// when none exist.
func LatestCheckpoint(dir string) (string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, checkpointPattern))
	if err != nil {
		return "", err
	}
	if len(paths) == 0 {
		return "", fmt.Errorf("dxbar: no checkpoint files under %s", dir)
	}
	sort.Strings(paths)
	return paths[len(paths)-1], nil
}

// LoadCheckpoint reads and validates a checkpoint file without building an
// engine. Any truncation, bit flip or structural mismatch is an error — the
// engine blob's own integrity is verified again at restore time.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	r, err := snapshot.NewReader(data)
	if err != nil {
		return nil, fmt.Errorf("dxbar: checkpoint %s: %w", path, err)
	}
	r.Expect("CKPT")
	ck := &Checkpoint{Cycle: r.U64()}
	cfgJSON := r.Bytes()
	ck.PastWarmup = r.Bool()
	ck.Base.CrossbarTraversals = r.U64()
	ck.Base.LinkTraversals = r.U64()
	ck.Base.BufferWrites = r.U64()
	ck.Base.BufferReads = r.U64()
	ck.Base.NackHops = r.U64()
	eng := r.Bytes()
	if err := r.Close(); err != nil {
		return nil, fmt.Errorf("dxbar: checkpoint %s: %w", path, err)
	}
	if err := json.Unmarshal(cfgJSON, &ck.Config); err != nil {
		return nil, fmt.Errorf("dxbar: checkpoint %s: config: %w", path, err)
	}
	// The engine blob aliases the file buffer; copy so the Checkpoint owns
	// its bytes independent of the (now unreferenced) read buffer.
	ck.engine = append([]byte(nil), eng...)
	return ck, nil
}

// Resume continues a checkpointed run to its configured end. The result is
// bit-identical to the uninterrupted run's: the checkpoint captures every
// piece of state the remaining cycles depend on, including the RNG stream
// position. Checkpointing stays enabled under the saved config, so a resumed
// run keeps writing checkpoints into the same directory.
func Resume(path string) (Result, error) {
	return ResumeWith(path, nil)
}

// ResumeWith continues a checkpointed run after letting mutate adjust the
// saved config. Only observation-layer fields may change — tracing, shard
// count, diagnostics, checkpoint cadence, metrics — anything that steers
// results (design, mesh, load, seed, window) must stay, and the restore
// rejects structural mismatches it can detect.
func ResumeWith(path string, mutate func(*Config)) (Result, error) {
	ck, err := LoadCheckpoint(path)
	if err != nil {
		return Result{}, err
	}
	if mutate != nil {
		mutate(&ck.Config)
	}
	return newRunner().runFrom(ck.Config, ck, 0)
}

// Rewind restores a checkpoint and re-runs up to window cycles from it with
// the flight recorder widened to every event kind — the post-mortem loupe:
// restore just before the region of interest and replay it at full trace
// detail. trace is the recorder ring capacity (0 keeps the saved config's
// EventTrace). The returned Result covers only the cycles actually re-run
// (partial-window metrics are renormalized exactly like an interrupted
// run's); further checkpoint writes are disabled during the rewind.
func Rewind(path string, window uint64, trace int) (Result, error) {
	ck, err := LoadCheckpoint(path)
	if err != nil {
		return Result{}, err
	}
	if window == 0 {
		return Result{}, fmt.Errorf("dxbar: rewind window must be positive")
	}
	ck.Config.CheckpointInterval = 0
	ck.Config.CheckpointDir = ""
	if trace > 0 {
		ck.Config.EventTrace = trace
	}
	ck.Config.EventKinds = nil // widened: record every kind
	return newRunner().runFrom(ck.Config, ck, window)
}

// checkpointTracker records the most recent checkpoint path of a live run, so
// the diag post-mortem bundle can point at it. The checkpoint hook and the
// bundle writer both run at sequential points of the cycle loop, but the
// tracker is also read by FinalDump after the run; a mutex keeps it safe
// regardless of caller.
type checkpointTracker struct {
	mu   sync.Mutex
	path string
}

func (t *checkpointTracker) set(p string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.path = p
	t.mu.Unlock()
}

func (t *checkpointTracker) get() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.path
}
