package dxbar

import (
	"os"
	"regexp"
	"testing"

	"dxbar/internal/diag"
	"dxbar/internal/metrics"
	"dxbar/internal/stats"
)

// TestMetricsDocumented keeps METRICS.md and the registry in lockstep: every
// metric family a fully-instrumented run registers must have a doc entry, and
// every documented dxbar_* name must still be registered. Adding a metric
// without documenting it (or documenting a ghost) fails here.
func TestMetricsDocumented(t *testing.T) {
	// Register everything an instrumented run can: full engine telemetry with
	// the sharded series and the latency histogram, plus the run-health
	// monitor.
	reg := metrics.NewRegistry()
	tel := metrics.NewSimTelemetry(reg, metrics.SimTelemetryOptions{
		Shards:        2,
		LatencyBounds: stats.LatencyBucketUppers(),
	})
	defer tel.Detach()
	mon := diag.NewMonitor(diag.Config{Registry: reg}, 64)
	defer mon.Detach()
	// The run-ledger counters and the /events SSE hub families.
	ledgerMetrics(reg)
	hub := metrics.NewSSEHub(reg, nil, metrics.SSEHubOptions{})
	defer hub.Close()

	registered := map[string]bool{}
	for _, f := range reg.Families() {
		registered[f.Name] = true
	}
	if len(registered) == 0 {
		t.Fatal("no metric families registered")
	}

	doc, err := os.ReadFile("METRICS.md")
	if err != nil {
		t.Fatalf("METRICS.md missing: %v", err)
	}
	documented := map[string]bool{}
	for _, m := range regexp.MustCompile("`(dxbar_[a-z0-9_]+)`").FindAllStringSubmatch(string(doc), -1) {
		documented[m[1]] = true
	}

	for name := range registered {
		if !documented[name] {
			t.Errorf("metric %s is registered but undocumented — add it to METRICS.md", name)
		}
	}
	for name := range documented {
		if !registered[name] {
			t.Errorf("METRICS.md documents %s, which no instrumented run registers — remove or fix it", name)
		}
	}
}
