package dxbar

import (
	"fmt"
	"math"
)

// SeedStats summarizes a metric across independent seeds: the simulation
// methodology's answer to "is this difference real or noise?". The paper
// reports single-run numbers; the harness exposes the seed variance so
// every comparison in EXPERIMENTS.md can be checked against it.
type SeedStats struct {
	Mean, StdDev, Min, Max float64
	N                      int
}

func newSeedStats(xs []float64) SeedStats {
	s := SeedStats{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	if s.N == 0 {
		return SeedStats{}
	}
	var sum float64
	for _, x := range xs {
		sum += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean = sum / float64(s.N)
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if s.N > 1 {
		s.StdDev = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// String renders "mean ± std [min, max]".
func (s SeedStats) String() string {
	return fmt.Sprintf("%.4f ± %.4f [%.4f, %.4f]", s.Mean, s.StdDev, s.Min, s.Max)
}

// SeedSweepResult aggregates the headline metrics of one configuration
// across seeds.
type SeedSweepResult struct {
	Accepted SeedStats
	Latency  SeedStats
	EnergyNJ SeedStats
}

// RunSeeds runs the configuration across n seeds (cfg.Seed, cfg.Seed+1, …)
// in parallel and aggregates the headline metrics.
func RunSeeds(cfg Config, n int) (SeedSweepResult, error) {
	if n <= 0 {
		return SeedSweepResult{}, fmt.Errorf("dxbar: RunSeeds needs n > 0")
	}
	configs := make([]Config, n)
	for i := range configs {
		configs[i] = cfg
		configs[i].Seed = cfg.Seed + int64(i)
	}
	results, err := RunMany(configs, 0)
	if err != nil {
		return SeedSweepResult{}, err
	}
	acc := make([]float64, n)
	lat := make([]float64, n)
	en := make([]float64, n)
	for i, r := range results {
		acc[i] = r.AcceptedLoad
		lat[i] = r.AvgLatency
		en[i] = r.AvgEnergyNJ
	}
	return SeedSweepResult{
		Accepted: newSeedStats(acc),
		Latency:  newSeedStats(lat),
		EnergyNJ: newSeedStats(en),
	}, nil
}
