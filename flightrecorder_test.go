package dxbar

import (
	"bytes"
	"encoding/json"
	"testing"

	"dxbar/internal/events"
	"dxbar/internal/sim"
	"dxbar/internal/stats"
	"dxbar/internal/topology"
	"dxbar/internal/traffic"
)

// tracedNetwork is steadyNetwork with a flight recorder attached: every
// kind enabled, and a ring small enough to wrap during the test so the
// overwrite path is exercised too.
func tracedNetwork(t *testing.T, design Design, load float64) (*Network, *events.Recorder) {
	t.Helper()
	mesh := topology.MustMesh(8, 8)
	pat, err := traffic.New("UR", mesh)
	if err != nil {
		t.Fatal(err)
	}
	bern, err := traffic.NewBernoulli(mesh, pat, load, 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	coll := stats.NewCollector(mesh.Nodes(), 0, 1<<40)
	rec := events.NewRecorder(mesh.Nodes(), 4096)
	net, err := NewNetwork(NetworkOptions{
		Design: design,
		Mesh:   mesh,
		Source: &sim.SourceAdapter{B: bern},
		Stats:  coll,
		Events: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	return net, rec
}

// TestStepZeroAllocTraced extends the steady-state zero-allocation guard to
// runs with the flight recorder ENABLED: recording into the (wrapping) ring
// must not allocate either, for every design.
func TestStepZeroAllocTraced(t *testing.T) {
	load := map[Design]float64{DesignFlitBless: 0.12, DesignSCARAB: 0.10}
	for _, d := range AllDesigns {
		t.Run(string(d), func(t *testing.T) {
			l, ok := load[d]
			if !ok {
				l = 0.3
			}
			net, rec := tracedNetwork(t, d, l)
			net.Engine.Run(3000)
			if rec.Overwritten() == 0 {
				t.Fatalf("%s: ring did not wrap after warmup; the test must cover the overwrite path", d)
			}
			avg := testing.AllocsPerRun(5, func() { net.Engine.Run(200) })
			if avg != 0 {
				t.Errorf("%s: %.2f allocations per 200-cycle traced run in steady state, want 0", d, avg)
			}
			if rec.Total() == 0 {
				t.Errorf("%s: recorder saw no events", d)
			}
		})
	}
}

// onePacketSource injects a single one-flit packet at a fixed node/cycle.
type onePacketSource struct {
	spec traffic.PacketSpec
	done bool
}

func (s *onePacketSource) Generate(node int, cycle uint64) []*traffic.PacketSpec {
	if s.done || node != s.spec.Src || cycle != s.spec.Cycle {
		return nil
	}
	s.done = true
	return []*traffic.PacketSpec{&s.spec}
}

// TestPacketPathThreeHops reconstructs a hand-built scenario: one packet,
// alone in a 2×2 DXbar mesh, from node 0 to node 3. Under DOR it must be
// injected at 0, win the primary crossbar at 1 (going south) and at 3
// (ejecting), and be delivered at 3 — two cycles per hop, nothing buffered.
func TestPacketPathThreeHops(t *testing.T) {
	mesh := topology.MustMesh(2, 2)
	coll := stats.NewCollector(mesh.Nodes(), 0, 1000)
	rec := events.NewRecorder(mesh.Nodes(), 256)
	net, err := NewNetwork(NetworkOptions{
		Design: DesignDXbar,
		Mesh:   mesh,
		Source: &onePacketSource{spec: traffic.PacketSpec{ID: 1, Src: 0, Dst: 3, NumFlits: 1, Cycle: 0}},
		Stats:  coll,
		Events: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	net.Engine.Run(50)

	path := rec.PacketPath(1)
	if len(path) != 4 {
		t.Fatalf("path has %d events, want 4: %v", len(path), path)
	}
	wantKinds := []events.Kind{events.Inject, events.PrimaryWin, events.PrimaryWin, events.Eject}
	wantNodes := []int32{0, 1, 3, 3}
	for i, e := range path {
		if e.Kind != wantKinds[i] || e.Node != wantNodes[i] {
			t.Errorf("hop %d = %s@%d, want %s@%d", i, e.Kind, e.Node, wantKinds[i], wantNodes[i])
		}
	}
	// Uncontended pipeline: ST at injection, LT to the neighbour, so each
	// router is two cycles after the previous.
	for i := 1; i < 3; i++ {
		if path[i].Cycle != path[i-1].Cycle+2 {
			t.Errorf("hop %d at cycle %d, want %d (2 cycles/hop)", i, path[i].Cycle, path[i-1].Cycle+2)
		}
	}
	// The ejection's Detail is the end-to-end latency.
	eject := path[3]
	if eject.Cycle != path[2].Cycle || uint64(eject.Detail) != eject.Cycle {
		t.Errorf("eject at cycle %d with latency %d, want same-cycle ejection with latency = cycle (injected at 0)",
			eject.Cycle, eject.Detail)
	}
	// Nothing contended, so nothing was buffered.
	if n := rec.Matrix().KindTotal(events.Buffered); n != 0 {
		t.Errorf("%d buffering events for a lone packet, want 0", n)
	}
}

// TestEventKindsMask: Config.EventKinds filters at record time — a SCARAB
// run traced for drops only must yield a ring of nothing but Drop events.
func TestEventKindsMask(t *testing.T) {
	res, err := Run(Config{
		Design: DesignSCARAB, Pattern: "UR", Load: 0.3, Seed: 7,
		WarmupCycles: 200, MeasureCycles: 1000,
		EventTrace: 1 << 14, EventKinds: []string{"drop"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) == 0 {
		t.Fatal("no drop events recorded at a saturating SCARAB load")
	}
	for _, e := range res.Events {
		if e.Kind != events.Drop {
			t.Fatalf("masked-out kind %s reached the ring", e.Kind)
		}
	}
	if res.RouterEvents.KindTotal(events.Inject) != 0 {
		t.Error("matrix counted a masked-out kind")
	}

	if _, err := Run(Config{
		Design: DesignSCARAB, Pattern: "UR", Load: 0.1,
		WarmupCycles: 10, MeasureCycles: 10,
		EventTrace: 16, EventKinds: []string{"bogus"},
	}); err == nil {
		t.Error("Run accepted an unknown event kind")
	}
}

// TestTraceBitIdentity: enabling the flight recorder must not change the
// simulation — every measured metric of a traced run equals the untraced
// run's, bit for bit.
func TestTraceBitIdentity(t *testing.T) {
	cfg := Config{
		Design: DesignDXbar, Pattern: "NUR", Load: 0.35, Seed: 11,
		WarmupCycles: 300, MeasureCycles: 1500,
	}
	plain, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.EventTrace = 1 << 12
	traced, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if traced.Events == nil || traced.RouterEvents == nil {
		t.Fatal("traced run returned no event data")
	}
	// Strip the event payload; everything else must match exactly.
	traced.Events = nil
	traced.EventsRecorded = 0
	traced.EventsOverwritten = 0
	traced.RouterEvents = nil
	plainJSON, _ := json.Marshal(plain)
	tracedJSON, _ := json.Marshal(traced)
	if !bytes.Equal(plainJSON, tracedJSON) {
		t.Errorf("traced run diverged from untraced run:\nuntraced: %s\ntraced:   %s", plainJSON, tracedJSON)
	}
}

// TestFairnessFlipsSurfaced: at a load where DXbar's buffers are busy the
// fairness counter flips and both the stats counter and the event matrix
// see it (satellite #1).
func TestFairnessFlipsSurfaced(t *testing.T) {
	res, err := Run(Config{
		Design: DesignDXbar, Pattern: "UR", Load: 0.45, Seed: 7,
		WarmupCycles: 500, MeasureCycles: 2000,
		EventTrace: 1 << 12, EventKinds: []string{"fairness_flip"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FairnessFlips == 0 {
		t.Error("no fairness flips surfaced at a load past DXbar's buffering point")
	}
	if res.RouterEvents.KindTotal(events.FairnessFlip) == 0 {
		t.Error("event matrix saw no fairness flips")
	}
}

// TestDroppedByNodeSum: the per-node drop counters partition the window
// total (satellite #3), and the drop heatmap renders.
func TestDroppedByNodeSum(t *testing.T) {
	res, err := Run(Config{
		Design: DesignSCARAB, Pattern: "UR", Load: 0.3, Seed: 7,
		WarmupCycles: 200, MeasureCycles: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DroppedFlits == 0 {
		t.Fatal("no drops at a saturating SCARAB load")
	}
	var sum uint64
	for _, n := range res.DroppedByNode {
		sum += n
	}
	if sum != res.DroppedFlits {
		t.Errorf("sum(DroppedByNode) = %d, want DroppedFlits = %d", sum, res.DroppedFlits)
	}
	if hm := DropHeatmap(res); hm == "(no flits were dropped)" || len(hm) == 0 {
		t.Errorf("drop heatmap missing: %q", hm)
	}
}

// TestChromeTraceFromRun: a traced run exports valid Chrome trace JSON with
// the required fields on every event.
func TestChromeTraceFromRun(t *testing.T) {
	res, err := Run(Config{
		Design: DesignDXbar, Pattern: "UR", Load: 0.3, Seed: 7,
		Width: 4, Height: 4,
		WarmupCycles: 100, MeasureCycles: 400,
		EventTrace: 1 << 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, TraceRecordFor("dxbar test", res)); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) < 100 {
		t.Fatalf("only %d trace events from a traced run", len(doc.TraceEvents))
	}
	for i, ev := range doc.TraceEvents {
		for _, field := range []string{"ph", "ts", "pid"} {
			if _, ok := ev[field]; !ok {
				t.Fatalf("event %d missing required field %q: %v", i, field, ev)
			}
		}
	}
	if hm := EventHeatmap(res, events.Buffered); hm == "(event tracing was not enabled)" {
		t.Error("event heatmap unavailable on a traced run")
	}
}
