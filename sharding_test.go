package dxbar

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"dxbar/internal/sim"
)

// shardCounts are the shard counts the determinism tests sweep: the
// sequential engine, even and uneven column splits, and the auto sizing.
// AutoShards resolves to GOMAXPROCS, so under -race this also drives the
// barrier with real parallelism on multi-core hosts.
var shardCounts = []int{1, 2, 3, 4, AutoShards}

// runPair executes the same config sequentially and sharded and fails the
// test unless the full Results — throughput, latency, energy counts, event
// trace, per-router matrices, time series — are bit-identical.
func runPair(t *testing.T, base Config, shards int) {
	t.Helper()
	seq := base
	seq.Shards = 1
	want, err := Run(seq)
	if err != nil {
		t.Fatal(err)
	}
	sharded := base
	sharded.Shards = shards
	got, err := Run(sharded)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("shards=%d: result differs from sequential\nseq:     %+v\nsharded: %+v", shards, want, got)
	}
}

// TestShardBitIdentityAllDesigns is the sharded engine's determinism
// contract: for every design, seed and shard count, the sharded engine must
// reproduce the sequential engine bit for bit. Event tracing is on so the
// comparison covers the flight-recorder ring ordering, not just aggregate
// counters; SCARAB's load sits past saturation so retransmit staging is
// exercised hard.
func TestShardBitIdentityAllDesigns(t *testing.T) {
	for _, d := range AllDesigns {
		for _, seed := range []int64{7, 42} {
			base := Config{
				Design: d, Width: 8, Height: 8, Pattern: "UR", Load: 0.3,
				WarmupCycles: 300, MeasureCycles: 1200, Seed: seed,
				EventTrace: 512,
			}
			for _, n := range shardCounts {
				n := n
				t.Run(fmt.Sprintf("%s/seed%d/shards%d", d, seed, n), func(t *testing.T) {
					runPair(t, base, n)
				})
			}
		}
	}
}

// TestShardBitIdentityFaultSweep covers the fault-injection configurations:
// broken crossbars (and single crosspoints) reroute flits through the
// secondary fabric and change buffering/retransmission behaviour, so the
// staged side effects differ from the healthy runs. Utilization tracking
// and time-series sampling are enabled to compare those result fields too.
func TestShardBitIdentityFaultSweep(t *testing.T) {
	for _, d := range []Design{DesignDXbar, DesignUnified} {
		for _, gran := range []string{"crossbar", "crosspoint"} {
			for _, frac := range []float64{0.5, 1.0} {
				base := Config{
					Design: d, Width: 8, Height: 8, Pattern: "UR", Load: 0.25,
					WarmupCycles: 300, MeasureCycles: 1000, Seed: 11,
					FaultFraction: frac, FaultGranularity: gran,
					TrackUtilization: true, SampleInterval: 128,
					EventTrace: 256,
				}
				t.Run(fmt.Sprintf("%s/%s/%.2f", d, gran, frac), func(t *testing.T) {
					runPair(t, base, 4)
				})
			}
		}
	}
}

// TestShardBitIdentityLargeMesh checks a 16×16 mesh — multi-column tiles,
// and the mesh size where sharding is actually meant to be used.
func TestShardBitIdentityLargeMesh(t *testing.T) {
	base := Config{
		Design: DesignDXbar, Width: 16, Height: 16, Pattern: "MT", Load: 0.25,
		WarmupCycles: 200, MeasureCycles: 800, Seed: 3,
	}
	for _, n := range []int{4, AutoShards} {
		t.Run(fmt.Sprintf("shards%d", n), func(t *testing.T) {
			runPair(t, base, n)
		})
	}
}

// TestShardEngineReuse checks determinism through the runner's engine
// recycling: RunMany gives both identical sharded jobs to one worker, so
// the second run goes through Engine.Reset instead of a fresh build, and
// both must still match a sequential run.
func TestShardEngineReuse(t *testing.T) {
	cfg := Config{
		Design: DesignSCARAB, Width: 8, Height: 8, Pattern: "UR", Load: 0.2,
		WarmupCycles: 200, MeasureCycles: 800, Seed: 5, Shards: 2,
	}
	batch, err := RunMany([]Config{cfg, cfg}, 1)
	if err != nil {
		t.Fatal(err)
	}
	seq := cfg
	seq.Shards = 1
	want, err := Run(seq)
	if err != nil {
		t.Fatal(err)
	}
	for i, got := range batch {
		if !reflect.DeepEqual(want, got) {
			t.Errorf("run %d of reused sharded engine differs from sequential", i)
		}
	}
}

// TestShardZeroAllocSteadyState extends the zero-allocation guard to the
// sharded engine: the per-cycle worker spawns, staging slices and barrier
// must all reuse capacity once warm.
func TestShardZeroAllocSteadyState(t *testing.T) {
	load := map[Design]float64{DesignFlitBless: 0.12, DesignSCARAB: 0.10}
	for _, d := range AllDesigns {
		t.Run(string(d), func(t *testing.T) {
			l, ok := load[d]
			if !ok {
				l = 0.3
			}
			net := steadyShardedNetwork(t, d, l, 4)
			net.Engine.Run(3000)
			avg := testing.AllocsPerRun(5, func() { net.Engine.Run(200) })
			if avg != 0 {
				t.Errorf("%s: %.2f allocations per 200-cycle run in sharded steady state, want 0", d, avg)
			}
		})
	}
}

// TestShardZeroAllocSteadyStateLargeMesh is the sharded counterpart of the
// sequential large-mesh guard: at 16×16, 32×32 and 64×64 the tile-parallel
// backend — worker spawns, staging slices, profiler, rebalancing passes —
// must also run allocation-free once warm (the ISSUE-7 acceptance bar is
// 0 allocs/cycle at 64×64 for both engines). The default rebalance interval
// (1024) fires several times inside the measured window, so the guard covers
// migration-driven node-list rebuilds too.
func TestShardZeroAllocSteadyStateLargeMesh(t *testing.T) {
	if testing.Short() {
		t.Skip("large-mesh warmups are seconds of simulated work")
	}
	for _, c := range largeMeshAllocCases {
		t.Run(fmt.Sprintf("%dx%d", c.w, c.h), func(t *testing.T) {
			net := steadyMeshNetwork(t, DesignDXbar, c.w, c.h, c.load, c.shards)
			net.Engine.Run(c.warmup)
			avg := testing.AllocsPerRun(5, func() { net.Engine.Run(200) })
			if avg != 0 {
				t.Errorf("dxbar %dx%d sharded: %.2f allocations per 200-cycle run in steady state, want 0", c.w, c.h, avg)
			}
		})
	}
}

// TestShardCountResolution pins the Shards-resolution rules the public API
// documents.
func TestShardCountResolution(t *testing.T) {
	cases := []struct {
		n, width, height, want int
	}{
		{0, 8, 8, 1},
		{1, 8, 8, 1},
		{2, 8, 8, 2},
		{8, 8, 8, 8},
		{16, 8, 8, 16},        // 4x4 grid of 2x2 tiles
		{16, 8, 1, 8},         // 1-row mesh: grid degenerates to column strips
		{100, 8, 8, 64},       // clamped to one tile per node
		{7, 8, 8, 7},          // primes stay feasible as 7x1 strips
		{AutoShards, 1, 1, 1}, // clamped to a 1-node mesh
		{AutoShards, 1 << 10, 1 << 10, runtime.GOMAXPROCS(0)},
	}
	for _, c := range cases {
		if got := sim.ResolveShards(c.n, c.width, c.height); got != c.want {
			t.Errorf("ResolveShards(%d, %d, %d) = %d, want %d", c.n, c.width, c.height, got, c.want)
		}
	}
	// The engine must report the resolved count.
	net := steadyShardedNetwork(t, DesignDXbar, 0.1, 2)
	if got := net.Engine.Shards(); got != 2 {
		t.Errorf("Engine.Shards() = %d, want 2", got)
	}
}
