# Convenience targets for the dxbar reproduction.

GO ?= go

# Every example program, derived from the directory listing so adding an
# example never requires touching this file.
EXAMPLES := $(notdir $(wildcard examples/*))

.PHONY: all build test test-race race lint bench bench-smoke bench-trend figures figures-full examples examples-smoke telemetry-smoke dashboard-smoke diag-smoke checkpoint-smoke determinism clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test: test-race examples-smoke
	$(GO) vet ./...
	$(GO) test ./...

# Race-detector pass over the packages plus the concurrent paths of the root
# package: the RunMany batch runner, the sharded cycle engine and the
# fast-vs-reference arbitration identity suite (which drives every design's
# bit-parallel core against its branchy oracle, sharded runs included).
test-race:
	$(GO) test -race ./internal/...
	$(GO) test -race -run 'TestRunMany|TestShard|TestArbitrationBitIdentity' .

race:
	$(GO) test -race ./...

# Static analysis beyond go vet. staticcheck is not vendored; install it with
#   go install honnef.co/go/tools/cmd/staticcheck@latest
# shellcheck covers the smoke scripts. Both skip gracefully where missing
# (offline containers) — CI installs and enforces them.
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi
	@if command -v shellcheck >/dev/null 2>&1; then \
		shellcheck scripts/*.sh; \
	else \
		echo "lint: shellcheck not installed, skipping (apt install shellcheck)"; \
	fi

# Every paper table/figure plus the ablation and extension harnesses.
bench:
	$(GO) test -bench=. -benchmem

# One quick pass of the per-design cycle-engine benchmarks; emits
# bench/BENCH_<date>.json and compares against the newest earlier baseline.
# The bitarb micro-benchmarks (bit-parallel arbitration kernels vs their
# branchy references) run alongside and land in bench/BITARB_bench.txt so CI
# can archive kernel-level numbers next to the whole-engine ones.
bench-smoke:
	$(GO) run ./cmd/dxbar-bench -quick -out bench -suffix _ci
	$(GO) test -run '^$$' -bench . -benchmem ./internal/bitarb | tee bench/BITARB_bench.txt

# Chronological trend tables over the committed bench history: every
# BENCH_*.json and SCALE_*.json under bench/, date-sorted, as markdown on
# stdout. CI runs it after bench-smoke and uploads the report next to the
# records.
bench-trend:
	$(GO) run ./cmd/dxbar-report -trend bench

# Regenerate every figure as CSV + SVG + Markdown under results/.
figures:
	$(GO) run ./cmd/dxbar-sweep -fig all -quality quick -out results -svg -md

figures-full:
	$(GO) run ./cmd/dxbar-sweep -fig all -quality full -out results -svg -md

examples:
	for e in $(EXAMPLES); do \
		echo "=== $$e ==="; $(GO) run ./examples/$$e || exit 1; \
	done

# Build and run every example with DXBAR_SMOKE=1, which caps the open-loop
# windows (warmup <= 200, measure <= 800 cycles) so the whole suite finishes
# in seconds — a compile+runtime regression gate, not a demo.
examples-smoke:
	for e in $(EXAMPLES); do \
		echo "=== $$e (smoke) ==="; DXBAR_SMOKE=1 $(GO) run ./examples/$$e > /dev/null || exit 1; \
	done
	rm -f flightrecorder_trace.json

# Launch a sharded dxbar-sim with -http and assert /healthz and /metrics
# serve the expected series while the simulation runs (needs curl).
telemetry-smoke:
	sh scripts/telemetry_smoke.sh

# Run-ledger + live-dashboard smoke: a short run must archive its Result
# under its content key (and a -ledger-reuse re-run must be served from the
# archive), then a live run with -http must serve the dashboard page at /
# and stream SSE frames from /events (needs curl).
dashboard-smoke:
	sh scripts/dashboard_smoke.sh

# Force an anomaly on a saturated run and SIGQUIT a live one; assert both
# leave complete post-mortem bundles under diag-artifacts/.
diag-smoke:
	sh scripts/diag_smoke.sh diag-artifacts

# Crash-recovery drill: kill -9 a checkpointed dxbar-sim mid-flight, resume
# from the newest surviving checkpoint and assert the resumed run's metrics
# match an uninterrupted reference exactly.
checkpoint-smoke:
	sh scripts/checkpoint_smoke.sh

# The checkpoint/replay determinism suite under the race detector: resume
# bit-identity across designs, seeds and both engine backends, snapshot
# round-trip byte stability, corrupt-input robustness, rewind renormalization
# and the committed golden checkpoint (cross-version format stability).
determinism:
	$(GO) test -race -count=1 -run 'TestCheckpoint|TestSnapshot|TestGolden|TestRewind|TestRestoreEngine' .
	$(GO) test -race -count=1 ./internal/snapshot/

clean:
	rm -rf results flightrecorder_trace.json diag-artifacts
