# Convenience targets for the dxbar reproduction.

GO ?= go

.PHONY: all build test race bench bench-smoke figures figures-full examples clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) vet ./...
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Every paper table/figure plus the ablation and extension harnesses.
bench:
	$(GO) test -bench=. -benchmem

# One quick pass of the per-design cycle-engine benchmarks; emits
# bench/BENCH_<date>.json and compares against the newest earlier baseline.
bench-smoke:
	$(GO) run ./cmd/dxbar-bench -quick -out bench

# Regenerate every figure as CSV + SVG + Markdown under results/.
figures:
	$(GO) run ./cmd/dxbar-sweep -fig all -quality quick -out results -svg -md

figures-full:
	$(GO) run ./cmd/dxbar-sweep -fig all -quality full -out results -svg -md

examples:
	for e in quickstart hotspot faulttolerance splash tracereplay heatmap routing; do \
		echo "=== $$e ==="; $(GO) run ./examples/$$e || exit 1; \
	done

clean:
	rm -rf results
