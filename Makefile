# Convenience targets for the dxbar reproduction.

GO ?= go

.PHONY: all build test test-race race bench bench-smoke figures figures-full examples clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test: test-race
	$(GO) vet ./...
	$(GO) test ./...

# Race-detector pass over the packages plus a small RunMany batch (the
# parallel runner is the only concurrency in the tree).
test-race:
	$(GO) test -race ./internal/...
	$(GO) test -race -run 'TestRunMany' .

race:
	$(GO) test -race ./...

# Every paper table/figure plus the ablation and extension harnesses.
bench:
	$(GO) test -bench=. -benchmem

# One quick pass of the per-design cycle-engine benchmarks; emits
# bench/BENCH_<date>.json and compares against the newest earlier baseline.
bench-smoke:
	$(GO) run ./cmd/dxbar-bench -quick -out bench

# Regenerate every figure as CSV + SVG + Markdown under results/.
figures:
	$(GO) run ./cmd/dxbar-sweep -fig all -quality quick -out results -svg -md

figures-full:
	$(GO) run ./cmd/dxbar-sweep -fig all -quality full -out results -svg -md

examples:
	for e in quickstart hotspot faulttolerance splash tracereplay heatmap routing latencytail; do \
		echo "=== $$e ==="; $(GO) run ./examples/$$e || exit 1; \
	done

clean:
	rm -rf results
