package dxbar

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"dxbar/internal/metrics"
)

// ledgerTestConfig is a short deterministic run used across the ledger suite.
func ledgerTestConfig() Config {
	return Config{
		Design:        DesignDXbar,
		Pattern:       "UR",
		Load:          0.30,
		Seed:          42,
		WarmupCycles:  300,
		MeasureCycles: 1200,
	}
}

// TestLedgerBitIdentity proves the acceptance invariant: a run with the
// ledger attached returns exactly the Result of the same run without it, the
// record lands on disk, and a LedgerReuse run reconstructs that same Result
// from the archive without simulating.
func TestLedgerBitIdentity(t *testing.T) {
	cfg := ledgerTestConfig()
	plain, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	ledgered := cfg
	ledgered.LedgerDir = dir
	got, err := Run(ledgered)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, got) {
		t.Fatal("ledger archiving changed the Result")
	}

	l, err := OpenLedger(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := l.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("archived %d records, want 1", len(recs))
	}
	key, err := LedgerKey(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].Key != key {
		t.Fatalf("record key %.12s does not match LedgerKey %.12s", recs[0].Key, key)
	}
	if recs[0].Env.Go == "" {
		t.Fatal("record is missing its environment stamp")
	}

	// Reuse: decoding the archive must reproduce the fresh Result exactly,
	// latency histogram included.
	reused := ledgered
	reused.LedgerReuse = true
	reg := metrics.NewRegistry()
	reused.Metrics = reg
	r3, err := Run(reused)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, r3) {
		t.Fatal("reused Result differs from the simulated one")
	}
	_, hits := ledgerMetrics(reg)
	if hits.Value() != 1 {
		t.Fatalf("reuse hit counter = %d, want 1", hits.Value())
	}
}

// TestLedgerKeyInvariance: execution-layer knobs (shard count, checkpoint
// and ledger directories) must not change the content key; result-shaping
// knobs must.
func TestLedgerKeyInvariance(t *testing.T) {
	base := ledgerTestConfig()
	k0, err := LedgerKey(base)
	if err != nil {
		t.Fatal(err)
	}

	same := base
	same.Shards = 4
	same.RebalanceInterval = 512
	same.LedgerDir = "/somewhere/else"
	same.LedgerReuse = true
	same.CheckpointDir = "/ckpt"
	same.CheckpointInterval = 100
	same.DiagDir = "/diag"
	if k, _ := LedgerKey(same); k != k0 {
		t.Fatal("execution-layer fields leaked into the ledger key")
	}

	for name, mut := range map[string]func(*Config){
		"seed":        func(c *Config) { c.Seed++ },
		"load":        func(c *Config) { c.Load += 0.05 },
		"design":      func(c *Config) { c.Design = DesignFlitBless },
		"trace":       func(c *Config) { c.EventTrace = 128 },
		"samples":     func(c *Config) { c.SampleInterval = 100 },
		"disablediag": func(c *Config) { c.DisableDiag = true },
	} {
		c := base
		mut(&c)
		if k, _ := LedgerKey(c); k == k0 {
			t.Fatalf("%s change did not change the ledger key", name)
		}
	}
}

// TestLedgerReuseSkipsIneligible: traced runs must simulate even with a
// record present (their Result carries payloads the archive cannot
// faithfully reproduce).
func TestLedgerReuseSkipsIneligible(t *testing.T) {
	dir := t.TempDir()
	cfg := ledgerTestConfig()
	cfg.LedgerDir = dir
	cfg.EventTrace = 256
	first, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first.EventsRecorded == 0 {
		t.Fatal("fixture assumption broke: traced run recorded no events")
	}
	cfg.LedgerReuse = true
	second, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if second.EventsRecorded == 0 || second.RouterEvents == nil {
		t.Fatal("reuse served a traced run from the archive")
	}
}

// TestLedgerSharded: a sharded run shares the sequential run's key and its
// archived payload is bit-identical, so either engine can populate — or be
// served by — the same record.
func TestLedgerSharded(t *testing.T) {
	dir := t.TempDir()
	cfg := ledgerTestConfig()
	cfg.Width, cfg.Height = 8, 8
	cfg.LedgerDir = dir
	seq, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sharded := cfg
	sharded.Shards = 2
	sharded.LedgerReuse = true
	got, err := Run(sharded)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, got) {
		t.Fatal("sharded reuse differs from the sequential archive")
	}
}

// TestLedgerSplashArchive covers the closed-loop archive path.
func TestLedgerSplashArchive(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLedger(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := SplashConfig{Design: DesignDXbar, Benchmark: "fft", Seed: 3}
	res := SplashResult{ExecutionCycles: 1234, Packets: 99, Design: DesignDXbar, Benchmark: "fft"}
	path, err := l.ArchiveSplash(cfg, res)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
	recs, err := l.List()
	if err != nil || len(recs) != 1 {
		t.Fatalf("list: %v, %d records", err, len(recs))
	}
	if recs[0].Kind != "splash" {
		t.Fatalf("kind = %q", recs[0].Kind)
	}
	// A splash record is not a run: LedgerResult must refuse it.
	if _, err := LedgerResult(recs[0]); err == nil {
		t.Fatal("LedgerResult accepted a splash record")
	}
	// Defaulted and explicit configs share a key.
	again := cfg
	again.Width, again.Height = 8, 8
	again.MaxCycles = 3_000_000
	again.Routing = "DOR"
	if _, err := l.ArchiveSplash(again, res); err != nil {
		t.Fatal(err)
	}
	if recs, _ := l.List(); len(recs) != 1 {
		t.Fatalf("defaulted splash config did not dedup: %d records", len(recs))
	}
	if files, _ := filepath.Glob(filepath.Join(dir, "run-*.json")); len(files) != 1 {
		t.Fatalf("expected one record file, found %d", len(files))
	}
}

// TestLedgerRewindNotArchived: a rewind-clipped partial window must not
// claim — or overwrite — the full window's content key.
func TestLedgerRewindNotArchived(t *testing.T) {
	ckDir := t.TempDir()
	ledDir := t.TempDir()
	cfg := ledgerTestConfig()
	cfg.CheckpointDir = ckDir
	cfg.CheckpointInterval = 500
	cfg.LedgerDir = ledDir
	full, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l, err := OpenLedger(ledDir)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := l.List()
	if err != nil || len(recs) != 1 {
		t.Fatalf("full run: %v, %d records", err, len(recs))
	}

	// Rewind replays a clipped window from a mid-run checkpoint under the
	// (ledgered) saved config; the partial Result must not be archived.
	path, err := LatestCheckpoint(ckDir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Rewind(path, 100, 0); err != nil {
		t.Fatal(err)
	}
	recs, err = l.List()
	if err != nil || len(recs) != 1 {
		t.Fatalf("after rewind: %v, %d records", err, len(recs))
	}
	archived, err := LedgerResult(recs[0])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(full, archived) {
		t.Fatal("rewind overwrote the full run's record with a partial window")
	}
}
