// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§III), plus the ablations called out in DESIGN.md. Each
// benchmark regenerates the figure's data and prints the same rows/series
// the paper reports (on the first iteration only, so -benchtime multipliers
// stay readable).
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// The absolute numbers come from this repository's simulator and energy
// model, not the authors' Synopsys/GEMS testbed; EXPERIMENTS.md records the
// paper-vs-measured comparison for every figure.
package dxbar

import (
	"fmt"
	"testing"
)

// benchQ is the quality used by the figure benchmarks: the paper's load
// axis, trimmed to keep a full -bench=. run in minutes.
var benchQ = Quality{
	Warmup: 1000, Measure: 4000,
	Loads:          []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6},
	FaultFractions: []float64{0, 0.25, 0.5, 0.75, 1.0},
	SplashSeeds:    1,
}

const benchSeed = 42

func printFigure(fig Figure) {
	fmt.Printf("\n== %s: %s ==\n   x: %s | y: %s\n", fig.ID, fig.Title, fig.XLabel, fig.YLabel)
	for _, s := range fig.Series {
		fmt.Printf("%-22s", s.Label)
		for i := range s.X {
			if s.XNames != nil {
				fmt.Printf(" %s=%.3f", s.XNames[i], s.Y[i])
			} else {
				fmt.Printf(" %.2f:%.3f", s.X[i], s.Y[i])
			}
		}
		fmt.Println()
	}
}

// BenchmarkTable3AreaEnergy regenerates Table III (area and buffer energy
// per design, 65 nm / 1.0 V / 1 GHz).
func BenchmarkTable3AreaEnergy(b *testing.B) {
	var rows []Table3Row
	for i := 0; i < b.N; i++ {
		rows = Table3()
	}
	b.StopTimer()
	fmt.Printf("\n== Table III: area and buffer energy ==\n")
	for _, r := range rows {
		fmt.Printf("%-12s area=%.4f mm^2  buffer=%.1f pJ/flit\n", r.Design, r.AreaMM2, r.BufferEnergyPJ)
	}
}

// BenchmarkFig5ThroughputUR regenerates Fig. 5: accepted vs offered load
// under uniform random traffic for all six designs.
func BenchmarkFig5ThroughputUR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := Figure5(benchQ, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.StopTimer()
			printFigure(fig)
			b.StartTimer()
		}
	}
}

// BenchmarkFig6EnergyUR regenerates Fig. 6: average energy per packet vs
// offered load under uniform random traffic.
func BenchmarkFig6EnergyUR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := Figure6(benchQ, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.StopTimer()
			printFigure(fig)
			b.StartTimer()
		}
	}
}

// BenchmarkFig7SyntheticThroughput regenerates Fig. 7: throughput at
// offered load 0.5 across all nine synthetic patterns.
func BenchmarkFig7SyntheticThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := Figure7(benchQ, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.StopTimer()
			printFigure(fig)
			b.StartTimer()
		}
	}
}

// BenchmarkFig8SyntheticEnergy regenerates Fig. 8: energy at offered load
// 0.5 across all nine synthetic patterns.
func BenchmarkFig8SyntheticEnergy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := Figure8(benchQ, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.StopTimer()
			printFigure(fig)
			b.StartTimer()
		}
	}
}

// BenchmarkFig9SplashTime regenerates Fig. 9: normalized execution time of
// the nine SPLASH-2 (substitute) workloads on every design.
func BenchmarkFig9SplashTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := Figure9(benchQ, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.StopTimer()
			printFigure(fig)
			b.StartTimer()
		}
	}
}

// BenchmarkFig10SplashEnergy regenerates Fig. 10: energy per packet of the
// nine SPLASH-2 (substitute) workloads on every design.
func BenchmarkFig10SplashEnergy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := Figure10(benchQ, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.StopTimer()
			printFigure(fig)
			b.StartTimer()
		}
	}
}

// BenchmarkFig11FaultThroughputLatency regenerates Fig. 11: DXbar
// throughput under 0-100% crossbar faults for DOR and WF routing.
func BenchmarkFig11FaultThroughputLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := Figure11(benchQ, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.StopTimer()
			printFigure(fig)
			b.StartTimer()
		}
	}
}

// BenchmarkFig12FaultPower regenerates Fig. 12: DXbar latency/power under
// 0-100% crossbar faults for DOR and WF routing.
func BenchmarkFig12FaultPower(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := Figure12(benchQ, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.StopTimer()
			printFigure(fig)
			b.StartTimer()
		}
	}
}

// BenchmarkBufferingProbability checks §III.C's observation that past
// saturation only ~1/6 of DXbar flits are buffered per router traversal.
func BenchmarkBufferingProbability(b *testing.B) {
	var prob float64
	for i := 0; i < b.N; i++ {
		res, err := Run(Config{Design: DesignDXbar, Pattern: "UR", Load: 0.8,
			WarmupCycles: benchQ.Warmup, MeasureCycles: benchQ.Measure, Seed: benchSeed})
		if err != nil {
			b.Fatal(err)
		}
		prob = res.BufferingProbability
	}
	b.StopTimer()
	fmt.Printf("\n== buffering probability past saturation (paper: ~1/6) ==\nmeasured: %.3f\n", prob)
}

// BenchmarkAblationFairness sweeps the fairness-counter threshold (the
// paper chose 4 after testing; DESIGN.md ablation).
func BenchmarkAblationFairness(b *testing.B) {
	thresholds := []int{1, 2, 4, 8, 16, 1 << 20}
	type row struct {
		threshold int
		accepted  float64
		maxLat    uint64
	}
	var rows []row
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, th := range thresholds {
			res, err := Run(Config{Design: DesignDXbar, Pattern: "UR", Load: 0.45,
				FairnessThreshold: th,
				WarmupCycles:      benchQ.Warmup, MeasureCycles: benchQ.Measure, Seed: benchSeed})
			if err != nil {
				b.Fatal(err)
			}
			rows = append(rows, row{th, res.AcceptedLoad, res.MaxLatency})
		}
	}
	b.StopTimer()
	fmt.Printf("\n== ablation: fairness threshold (UR @ 0.45) ==\n")
	for _, r := range rows {
		fmt.Printf("threshold=%-8d accepted=%.4f maxLatency=%d\n", r.threshold, r.accepted, r.maxLat)
	}
}

// BenchmarkAblationBufferDepth sweeps DXbar's secondary-crossbar buffer
// depth around the paper's 4 flits.
func BenchmarkAblationBufferDepth(b *testing.B) {
	depths := []int{1, 2, 4, 8, 16}
	type row struct {
		depth    int
		accepted float64
		energy   float64
	}
	var rows []row
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, d := range depths {
			res, err := Run(Config{Design: DesignDXbar, Pattern: "UR", Load: 0.45,
				BufferDepth:  d,
				WarmupCycles: benchQ.Warmup, MeasureCycles: benchQ.Measure, Seed: benchSeed})
			if err != nil {
				b.Fatal(err)
			}
			rows = append(rows, row{d, res.AcceptedLoad, res.AvgEnergyNJ})
		}
	}
	b.StopTimer()
	fmt.Printf("\n== ablation: DXbar buffer depth (UR @ 0.45) ==\n")
	for _, r := range rows {
		fmt.Printf("depth=%-3d accepted=%.4f energy=%.4f nJ/pkt\n", r.depth, r.accepted, r.energy)
	}
}

// BenchmarkAblationUnifiedVsDual compares the unified dual-input crossbar
// against the dual-crossbar design (paper claim: similar performance,
// smaller area, +2 pJ/flit switching energy).
func BenchmarkAblationUnifiedVsDual(b *testing.B) {
	type row struct {
		design   Design
		accepted float64
		latency  float64
		energy   float64
	}
	var rows []row
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, d := range []Design{DesignDXbar, DesignUnified} {
			res, err := Run(Config{Design: d, Pattern: "UR", Load: 0.45,
				WarmupCycles: benchQ.Warmup, MeasureCycles: benchQ.Measure, Seed: benchSeed})
			if err != nil {
				b.Fatal(err)
			}
			rows = append(rows, row{d, res.AcceptedLoad, res.AvgLatency, res.AvgEnergyNJ})
		}
	}
	b.StopTimer()
	fmt.Printf("\n== ablation: unified vs dual crossbar (UR @ 0.45) ==\n")
	for _, r := range rows {
		fmt.Printf("%-9s accepted=%.4f latency=%.1f energy=%.4f nJ/pkt\n",
			r.design, r.accepted, r.latency, r.energy)
	}
}

// BenchmarkSimulatorSpeed measures raw simulation throughput
// (router-cycles per second) for the DXbar design — the number to watch
// when optimizing the engine.
func BenchmarkSimulatorSpeed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := Run(Config{Design: DesignDXbar, Pattern: "UR", Load: 0.3,
			WarmupCycles: 100, MeasureCycles: 900, Seed: benchSeed})
		if err != nil {
			b.Fatal(err)
		}
	}
	// 1000 cycles × 64 routers per iteration.
	b.ReportMetric(float64(b.N)*1000*64/b.Elapsed().Seconds(), "router-cycles/s")
}

// BenchmarkExtensionAFC compares the AFC extension design (network-wide
// adaptive flow control, reference [9]) against DXbar and the pure designs
// across the load axis — the comparison the paper argues for but did not
// simulate: DXbar should match AFC's bufferless energy at low load and beat
// its buffered-mode throughput at high load, without mode-switch state.
func BenchmarkExtensionAFC(b *testing.B) {
	type row struct {
		design Design
		low    Result
		high   Result
	}
	var rows []row
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, d := range []Design{DesignFlitBless, DesignBuffered4, DesignAFC, DesignDXbar} {
			lo, err := Run(Config{Design: d, Pattern: "UR", Load: 0.1,
				WarmupCycles: benchQ.Warmup, MeasureCycles: benchQ.Measure, Seed: benchSeed})
			if err != nil {
				b.Fatal(err)
			}
			hi, err := Run(Config{Design: d, Pattern: "UR", Load: 0.45,
				WarmupCycles: benchQ.Warmup, MeasureCycles: benchQ.Measure, Seed: benchSeed})
			if err != nil {
				b.Fatal(err)
			}
			rows = append(rows, row{d, lo, hi})
		}
	}
	b.StopTimer()
	fmt.Printf("\n== extension: AFC vs DXbar (UR) ==\n")
	for _, r := range rows {
		fmt.Printf("%-10s low: E=%.3f lat=%.1f | high: acc=%.3f E=%.3f\n",
			r.design, r.low.AvgEnergyNJ, r.low.AvgLatency, r.high.AcceptedLoad, r.high.AvgEnergyNJ)
	}
}

// BenchmarkExtensionPowerBudget reproduces the paper's §I motivation with
// the extension leakage model: the generic buffered router spends ~40% of
// its total power (dynamic + static) in the input buffers, the bufferless
// designs eliminate that entirely, and DXbar keeps the buffers but uses
// them rarely.
func BenchmarkExtensionPowerBudget(b *testing.B) {
	type row struct {
		design Design
		res    Result
	}
	var rows []row
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, d := range []Design{DesignBuffered4, DesignBuffered8, DesignFlitBless, DesignDXbar} {
			res, err := Run(Config{Design: d, Pattern: "UR", Load: 0.3,
				WarmupCycles: benchQ.Warmup, MeasureCycles: benchQ.Measure, Seed: benchSeed})
			if err != nil {
				b.Fatal(err)
			}
			rows = append(rows, row{d, res})
		}
	}
	b.StopTimer()
	fmt.Printf("\n== extension: total power budget at UR load 0.3 (paper §I: buffers ~40%%) ==\n")
	for _, r := range rows {
		p := r.res.Power
		fmt.Printf("%-10s total=%7.1f mW  buffers=%6.1f mW (%.0f%%)  dynamic=%7.1f  static=%6.1f\n",
			r.design, p.TotalMW, p.BufferDynamicMW+p.BufferStaticMW, p.BufferShareOfTot*100,
			p.BufferDynamicMW+p.OtherDynamicMW, p.BufferStaticMW+p.OtherStaticMW)
	}
}

// BenchmarkExtensionMeshScaling sweeps the mesh size (4x4 / 8x8 / 12x12):
// DXbar's advantage over the buffered baseline grows with network diameter
// (more hops saved per packet), while the bufferless designs saturate
// earlier on larger meshes (more chances to conflict per route).
func BenchmarkExtensionMeshScaling(b *testing.B) {
	type row struct {
		size   int
		design Design
		res    Result
	}
	var rows []row
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, size := range []int{4, 8, 12} {
			for _, d := range []Design{DesignFlitBless, DesignBuffered4, DesignDXbar} {
				res, err := Run(Config{Design: d, Pattern: "UR", Load: 0.3,
					Width: size, Height: size,
					WarmupCycles: benchQ.Warmup, MeasureCycles: benchQ.Measure, Seed: benchSeed})
				if err != nil {
					b.Fatal(err)
				}
				rows = append(rows, row{size, d, res})
			}
		}
	}
	b.StopTimer()
	fmt.Printf("\n== extension: mesh-size scaling (UR @ 0.3) ==\n")
	for _, r := range rows {
		fmt.Printf("%2dx%-2d %-10s acc=%.3f lat=%6.1f E=%.3f nJ/pkt\n",
			r.size, r.size, r.design, r.res.AcceptedLoad, r.res.AvgLatency, r.res.AvgEnergyNJ)
	}
}

// BenchmarkAblationCreditDelay sweeps the credit-return signalling latency.
// §II.A.2 notes the fairness threshold must cover the credit round trip;
// longer return paths shrink the usable buffer window and cost throughput.
func BenchmarkAblationCreditDelay(b *testing.B) {
	delays := []int{1, 2, 3, 4}
	type row struct {
		delay    int
		accepted float64
		latency  float64
	}
	var rows []row
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, d := range delays {
			res, err := Run(Config{Design: DesignDXbar, Pattern: "UR", Load: 0.45,
				CreditDelay:  d,
				WarmupCycles: benchQ.Warmup, MeasureCycles: benchQ.Measure, Seed: benchSeed})
			if err != nil {
				b.Fatal(err)
			}
			rows = append(rows, row{d, res.AcceptedLoad, res.AvgLatency})
		}
	}
	b.StopTimer()
	fmt.Printf("\n== ablation: credit-return delay (UR @ 0.45) ==\n")
	for _, r := range rows {
		fmt.Printf("delay=%d accepted=%.4f latency=%.1f\n", r.delay, r.accepted, r.latency)
	}
}

// BenchmarkAblationArbitration compares the paper's age-based arbitration
// against static port order: age order is the mechanism that bounds worst-
// case latency (the oldest flit always wins), so the tail collapses without
// it even when mean throughput barely moves.
func BenchmarkAblationArbitration(b *testing.B) {
	type row struct {
		policy   string
		accepted float64
		avg      float64
		max      uint64
	}
	var rows []row
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, portOrder := range []bool{false, true} {
			res, err := Run(Config{Design: DesignDXbar, Pattern: "UR", Load: 0.42,
				PortOrderArbitration: portOrder,
				WarmupCycles:         benchQ.Warmup, MeasureCycles: benchQ.Measure, Seed: benchSeed})
			if err != nil {
				b.Fatal(err)
			}
			name := "age-based"
			if portOrder {
				name = "port-order"
			}
			rows = append(rows, row{name, res.AcceptedLoad, res.AvgLatency, res.MaxLatency})
		}
	}
	b.StopTimer()
	fmt.Printf("\n== ablation: arbitration policy (UR @ 0.42) ==\n")
	for _, r := range rows {
		fmt.Printf("%-10s accepted=%.4f avgLat=%.1f maxLat=%d\n", r.policy, r.accepted, r.avg, r.max)
	}
}

// BenchmarkSeedVariance reports the headline Fig. 5/6 numbers as
// mean ± stddev across seeds — the noise floor every EXPERIMENTS.md
// comparison should be read against.
func BenchmarkSeedVariance(b *testing.B) {
	type row struct {
		design Design
		stats  SeedSweepResult
	}
	var rows []row
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, d := range []Design{DesignFlitBless, DesignBuffered8, DesignDXbar} {
			st, err := RunSeeds(Config{Design: d, Pattern: "UR", Load: 0.45,
				WarmupCycles: benchQ.Warmup, MeasureCycles: benchQ.Measure, Seed: benchSeed}, 5)
			if err != nil {
				b.Fatal(err)
			}
			rows = append(rows, row{d, st})
		}
	}
	b.StopTimer()
	fmt.Printf("\n== seed variance at UR @ 0.45 (5 seeds) ==\n")
	for _, r := range rows {
		fmt.Printf("%-10s accepted %s | energy %s nJ/pkt\n",
			r.design, r.stats.Accepted, r.stats.EnergyNJ)
	}
}
