package dxbar

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"dxbar/internal/sim"
	"dxbar/internal/stats"
	"dxbar/internal/topology"
	"dxbar/internal/traffic"
)

// checkpointCases cover every serialization surface: the paper routers with
// fault latches, SCARAB's drop/NACK path (the retransmit wheel), the buffered
// baseline's FIFO pipelines, AFC's shared mode controller, multi-flit packets
// (the reassemblers), the sharded backend and the flight recorder.
var checkpointCases = []struct {
	name string
	cfg  Config
}{
	{"dxbar_faults", Config{Design: DesignDXbar, Load: 0.30, Seed: 7, FaultFraction: 0.5}},
	{"unified", Config{Design: DesignUnified, Load: 0.30, Seed: 11, Pattern: "BR"}},
	{"scarab_retx", Config{Design: DesignSCARAB, Load: 0.45, Seed: 3}},
	{"buffered4_multiflit", Config{Design: DesignBuffered4, Load: 0.25, Seed: 5, FlitsPerPacket: 4}},
	{"afc_shared", Config{Design: DesignAFC, Load: 0.40, Seed: 9}},
	{"flitbless_sharded", Config{Design: DesignFlitBless, Load: 0.30, Seed: 2, Shards: 4}},
	{"dxbar_sharded_trace", Config{Design: DesignDXbar, Load: 0.30, Seed: 7, Shards: 4, EventTrace: 256}},
}

// checkpointWindow applies the shared small-run shape: 4×4 mesh, warmup 64,
// measure 192 (total 256), checkpoints at cycles 96 and 192.
func checkpointWindow(cfg Config) Config {
	cfg.Width, cfg.Height = 4, 4
	cfg.WarmupCycles, cfg.MeasureCycles = 64, 192
	return cfg
}

func resultJSON(t *testing.T, r Result) []byte {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatalf("marshal result: %v", err)
	}
	return b
}

// TestCheckpointResumeBitIdentity is the oracle of the checkpoint subsystem:
// snapshot at cycle C, restore, run to the end — the Result must be
// byte-identical to the uninterrupted run's, for every design, from every
// checkpoint the run wrote, and across engine backends (a checkpoint taken
// on the sharded engine restores into the sequential one and vice versa).
func TestCheckpointResumeBitIdentity(t *testing.T) {
	for _, tc := range checkpointCases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := checkpointWindow(tc.cfg)
			ref, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			refJSON := resultJSON(t, ref)

			dir := t.TempDir()
			ckptCfg := cfg
			ckptCfg.CheckpointInterval = 96
			ckptCfg.CheckpointDir = dir
			ckptCfg.CheckpointKeep = 10
			got, err := Run(ckptCfg)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(refJSON, resultJSON(t, got)) {
				t.Fatalf("checkpointing perturbed the run: results differ from uncheckpointed reference")
			}

			paths, err := filepath.Glob(filepath.Join(dir, "ckpt-*.dxsn"))
			if err != nil || len(paths) != 2 {
				t.Fatalf("want checkpoints at cycles 96 and 192, got %v (err %v)", paths, err)
			}
			for _, p := range paths {
				// Resume writes further checkpoints into the same directory;
				// that must not disturb bit-identity either.
				res, err := Resume(p)
				if err != nil {
					t.Fatalf("resume %s: %v", p, err)
				}
				if !bytes.Equal(refJSON, resultJSON(t, res)) {
					t.Errorf("resume from %s: result differs from uninterrupted run", filepath.Base(p))
				}
				// Cross-backend restore: flip sequential <-> sharded.
				res, err = ResumeWith(p, func(c *Config) {
					if c.Shards > 1 {
						c.Shards = 0
					} else {
						c.Shards = 4
					}
				})
				if err != nil {
					t.Fatalf("cross-backend resume %s: %v", p, err)
				}
				if !bytes.Equal(refJSON, resultJSON(t, res)) {
					t.Errorf("cross-backend resume from %s: result differs", filepath.Base(p))
				}
			}
		})
	}
}

// snapshotPair builds two structurally identical 4×4 networks (separate
// collectors, meters and sources) for round-trip tests.
func snapshotPair(t *testing.T, design Design) (a, b *Network) {
	t.Helper()
	build := func() *Network {
		mesh, err := topology.NewMesh(4, 4)
		if err != nil {
			t.Fatal(err)
		}
		pattern, err := traffic.New("UR", mesh)
		if err != nil {
			t.Fatal(err)
		}
		bern, err := traffic.NewBernoulli(mesh, pattern, 0.3, 2, 21)
		if err != nil {
			t.Fatal(err)
		}
		coll := stats.NewCollector(mesh.Nodes(), 64, 4096)
		net, err := NewNetwork(NetworkOptions{
			Design: design,
			Mesh:   mesh,
			Source: &sim.SourceAdapter{B: bern},
			Stats:  coll,
		})
		if err != nil {
			t.Fatal(err)
		}
		return net
	}
	return build(), build()
}

// TestSnapshotRoundTripByteStable asserts Snapshot → Restore → Snapshot is
// byte-stable: the canonical encodings (rings rebased to head 0, maps sorted,
// sparse structures ascending) make the stream a pure function of simulation
// state, which is what lets CI compare snapshots with cmp.
func TestSnapshotRoundTripByteStable(t *testing.T) {
	for _, d := range []Design{DesignDXbar, DesignSCARAB, DesignAFC} {
		t.Run(string(d), func(t *testing.T) {
			a, b := snapshotPair(t, d)
			a.Engine.Run(300)
			var b1 bytes.Buffer
			if err := a.Engine.Snapshot(&b1); err != nil {
				t.Fatal(err)
			}
			if err := b.Engine.Restore(b1.Bytes()); err != nil {
				t.Fatal(err)
			}
			var b2 bytes.Buffer
			if err := b.Engine.Snapshot(&b2); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
				t.Fatalf("snapshot not byte-stable across restore: %d vs %d bytes", b1.Len(), b2.Len())
			}
			// And the restored engine simulates identically from here.
			a.Engine.Run(100)
			b.Engine.Run(100)
			var a3, b3 bytes.Buffer
			if err := a.Engine.Snapshot(&a3); err != nil {
				t.Fatal(err)
			}
			if err := b.Engine.Snapshot(&b3); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a3.Bytes(), b3.Bytes()) {
				t.Fatalf("restored engine diverged within 100 cycles")
			}
		})
	}
}

// TestRestoreEngineCorruptInput walks every truncation and every single-byte
// flip of a real snapshot through Restore: each must fail with an error —
// never panic — and the CRC makes all bit flips detectable.
func TestRestoreEngineCorruptInput(t *testing.T) {
	a, _ := snapshotPair(t, DesignSCARAB)
	a.Engine.Run(200)
	var buf bytes.Buffer
	if err := a.Engine.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	for n := 0; n < len(data); n += 7 {
		_, fresh := snapshotPair(t, DesignSCARAB)
		if err := fresh.Engine.Restore(data[:n]); err == nil {
			t.Fatalf("truncation to %d bytes restored without error", n)
		}
	}
	flipped := make([]byte, len(data))
	for i := 0; i < len(data); i += 11 {
		copy(flipped, data)
		flipped[i] ^= 0x40
		_, fresh := snapshotPair(t, DesignSCARAB)
		if err := fresh.Engine.Restore(flipped); err == nil {
			t.Fatalf("bit flip at offset %d restored without error", i)
		}
	}
	// Design mismatch: a SCARAB snapshot must not restore into a buffered
	// engine (router-state presence differs).
	_, buffered := snapshotPair(t, DesignBuffered4)
	if err := buffered.Engine.Restore(data); err == nil {
		t.Fatal("snapshot restored into an engine of a different design")
	}
}

// FuzzRestoreEngine throws arbitrary mutations of real snapshot bytes at
// Restore. The contract under fuzzing is error-not-panic; a half-restored
// engine is impossible because the caller discards the engine on error.
func FuzzRestoreEngine(f *testing.F) {
	for _, d := range []Design{DesignDXbar, DesignSCARAB} {
		a, _ := snapshotPairF(f, d)
		a.Engine.Run(150)
		var buf bytes.Buffer
		if err := a.Engine.Snapshot(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte{})
	f.Add([]byte("DXSN"))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, net := snapshotPairF(t, DesignDXbar)
		_ = net.Engine.Restore(data) // must not panic
	})
}

// snapshotPairF is snapshotPair over the fuzzing/testing split interface.
func snapshotPairF(tb testing.TB, design Design) (a, b *Network) {
	tb.Helper()
	build := func() *Network {
		mesh, err := topology.NewMesh(4, 4)
		if err != nil {
			tb.Fatal(err)
		}
		pattern, err := traffic.New("UR", mesh)
		if err != nil {
			tb.Fatal(err)
		}
		bern, err := traffic.NewBernoulli(mesh, pattern, 0.3, 2, 21)
		if err != nil {
			tb.Fatal(err)
		}
		coll := stats.NewCollector(mesh.Nodes(), 64, 4096)
		net, err := NewNetwork(NetworkOptions{
			Design: design,
			Mesh:   mesh,
			Source: &sim.SourceAdapter{B: bern},
			Stats:  coll,
		})
		if err != nil {
			tb.Fatal(err)
		}
		return net
	}
	return build(), build()
}

// FuzzLoadCheckpoint fuzzes the checkpoint-file decoder the same way: any
// mutation of a real file must produce an error, never a panic.
func FuzzLoadCheckpoint(f *testing.F) {
	dir := f.TempDir()
	cfg := checkpointWindow(Config{Design: DesignDXbar, Load: 0.3, Seed: 7})
	cfg.CheckpointInterval = 96
	cfg.CheckpointDir = dir
	if _, err := Run(cfg); err != nil {
		f.Fatal(err)
	}
	paths, _ := filepath.Glob(filepath.Join(dir, "ckpt-*.dxsn"))
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		p := filepath.Join(t.TempDir(), "fuzz.dxsn")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		_, _ = LoadCheckpoint(p) // must not panic
	})
}

// TestCheckpointZeroAllocBetweenWrites pins the steady-state cost of an armed
// checkpoint hook: between writes the cycle loop must stay allocation-free
// (the hook is a nil check and a compare per cycle).
func TestCheckpointZeroAllocBetweenWrites(t *testing.T) {
	build := func() *Network {
		mesh, err := topology.NewMesh(4, 4)
		if err != nil {
			t.Fatal(err)
		}
		pattern, err := traffic.New("UR", mesh)
		if err != nil {
			t.Fatal(err)
		}
		bern, err := traffic.NewBernoulli(mesh, pattern, 0.25, 1, 21)
		if err != nil {
			t.Fatal(err)
		}
		coll := stats.NewCollector(mesh.Nodes(), 64, 1<<30)
		net, err := NewNetwork(NetworkOptions{
			Design: DesignDXbar,
			Mesh:   mesh,
			Source: &sim.SourceAdapter{B: bern},
			Stats:  coll,
		})
		if err != nil {
			t.Fatal(err)
		}
		return net
	}
	net := build()
	net.Engine.SetCheckpointHook(1<<40, func(uint64) {})
	net.Engine.Run(3000)
	avg := testing.AllocsPerRun(5, func() { net.Engine.Run(200) })
	if avg != 0 {
		t.Errorf("%.2f allocations per 200-cycle run with checkpointing armed, want 0", avg)
	}
}

// TestRewindPartialWindowNormalized covers the unified partial-result path:
// a rewind clipped to a window shorter than the remaining run must come back
// renormalized (Truncate) even though Interrupted is unset — per-cycle rates
// comparable to the full run's, not diluted by never-simulated cycles.
func TestRewindPartialWindowNormalized(t *testing.T) {
	cfg := checkpointWindow(Config{Design: DesignDXbar, Load: 0.3, Seed: 7})
	full, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	ckptCfg := cfg
	ckptCfg.CheckpointInterval = 96
	ckptCfg.CheckpointDir = dir
	if _, err := Run(ckptCfg); err != nil {
		t.Fatal(err)
	}
	paths, _ := filepath.Glob(filepath.Join(dir, "ckpt-*.dxsn"))
	if len(paths) == 0 {
		t.Fatal("no checkpoints written")
	}
	// Rewind 64 cycles from the first checkpoint (cycle 96): the run ends at
	// 160, far short of 256, with Interrupted unset.
	res, err := Rewind(paths[0], 64, 512)
	if err != nil {
		t.Fatal(err)
	}
	if res.Interrupted {
		t.Fatal("rewind misreported an interrupt")
	}
	if res.Packets == 0 {
		t.Fatal("rewind window measured no packets")
	}
	if len(res.Events) == 0 {
		t.Fatal("rewind did not record events despite widened trace")
	}
	// The renormalized accepted load must be in the full run's neighbourhood;
	// without Truncate it would be scaled down by the missing ~96 cycles.
	lo, hi := full.AcceptedLoad*0.5, full.AcceptedLoad*1.5
	if res.AcceptedLoad < lo || res.AcceptedLoad > hi {
		t.Errorf("rewind AcceptedLoad %.4f outside [%.4f, %.4f] of full run's %.4f",
			res.AcceptedLoad, lo, hi, full.AcceptedLoad)
	}
}

// TestCheckpointPruning asserts keep-last-K: a long checkpointed run leaves
// exactly K files, the newest ones.
func TestCheckpointPruning(t *testing.T) {
	dir := t.TempDir()
	cfg := checkpointWindow(Config{Design: DesignFlitBless, Load: 0.2, Seed: 1})
	cfg.CheckpointInterval = 32 // checkpoints at 32, 64, ..., 256
	cfg.CheckpointDir = dir
	cfg.CheckpointKeep = 2
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	paths, _ := filepath.Glob(filepath.Join(dir, "ckpt-*.dxsn"))
	if len(paths) != 2 {
		t.Fatalf("want 2 retained checkpoints, got %d: %v", len(paths), paths)
	}
	want := []string{"ckpt-000000000224.dxsn", "ckpt-000000000256.dxsn"}
	for i, p := range paths {
		if filepath.Base(p) != want[i] {
			t.Errorf("retained %s, want %s", filepath.Base(p), want[i])
		}
	}
}

// TestGoldenCheckpoint restores the committed golden checkpoint and compares
// the completed run against the committed expectation — the cross-version
// gate: any accidental format-version bump or silent layout drift breaks
// decoding of yesterday's files, and this test, loudly. Regenerate both files
// with DXBAR_UPDATE_GOLDEN=1 after an intentional format change.
func TestGoldenCheckpoint(t *testing.T) {
	ckptPath := filepath.Join("bench", "golden.ckpt")
	expPath := filepath.Join("bench", "golden_expected.json")
	if os.Getenv("DXBAR_UPDATE_GOLDEN") != "" {
		regenerateGolden(t, ckptPath, expPath)
	}
	res, err := ResumeWith(ckptPath, func(c *Config) {
		c.CheckpointInterval = 0
		c.CheckpointDir = ""
	})
	if err != nil {
		t.Fatalf("golden checkpoint failed to restore (format drift? regenerate with DXBAR_UPDATE_GOLDEN=1 if intentional): %v", err)
	}
	got, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(expPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bytes.TrimSpace(got), bytes.TrimSpace(want)) {
		t.Fatalf("golden checkpoint result drifted from %s (regenerate with DXBAR_UPDATE_GOLDEN=1 if intentional)", expPath)
	}
}

// goldenConfig is the fixed run behind bench/golden.ckpt.
func goldenConfig() Config {
	return checkpointWindow(Config{Design: DesignDXbar, Load: 0.2, Seed: 7})
}

func regenerateGolden(t *testing.T, ckptPath, expPath string) {
	t.Helper()
	dir := t.TempDir()
	cfg := goldenConfig()
	cfg.CheckpointInterval = 128 // one checkpoint, at cycle 128
	cfg.CheckpointDir = dir
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	src := filepath.Join(dir, fmt.Sprintf("ckpt-%012d.dxsn", 128))
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ckptPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := ResumeWith(ckptPath, func(c *Config) {
		c.CheckpointInterval = 0
		c.CheckpointDir = ""
	})
	if err != nil {
		t.Fatal(err)
	}
	exp, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(expPath, append(exp, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("regenerated %s and %s", ckptPath, expPath)
}
