package dxbar

import (
	"math"
	"strings"
	"testing"
)

func TestNewSeedStats(t *testing.T) {
	s := newSeedStats([]float64{1, 2, 3, 4})
	if s.Mean != 2.5 || s.Min != 1 || s.Max != 4 || s.N != 4 {
		t.Errorf("stats wrong: %+v", s)
	}
	want := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 3)
	if math.Abs(s.StdDev-want) > 1e-12 {
		t.Errorf("stddev = %v, want %v", s.StdDev, want)
	}
	if z := newSeedStats(nil); z.N != 0 || z.Mean != 0 {
		t.Errorf("empty stats wrong: %+v", z)
	}
	one := newSeedStats([]float64{7})
	if one.StdDev != 0 || one.Mean != 7 {
		t.Errorf("single-sample stats wrong: %+v", one)
	}
	if !strings.Contains(s.String(), "±") {
		t.Error("String format wrong")
	}
}

func TestRunSeeds(t *testing.T) {
	res, err := RunSeeds(Config{Design: DesignDXbar, Pattern: "UR", Load: 0.3,
		WarmupCycles: 300, MeasureCycles: 1200, Seed: 100}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted.N != 4 {
		t.Fatalf("n = %d", res.Accepted.N)
	}
	// Below saturation, accepted tracks offered tightly across seeds.
	if res.Accepted.Mean < 0.28 || res.Accepted.Mean > 0.32 {
		t.Errorf("mean accepted = %v, want ~0.3", res.Accepted.Mean)
	}
	if res.Accepted.StdDev > 0.02 {
		t.Errorf("seed variance suspiciously high: %v", res.Accepted.StdDev)
	}
	if res.Latency.Mean <= 0 || res.EnergyNJ.Mean <= 0 {
		t.Error("aggregated metrics must be positive")
	}
	if _, err := RunSeeds(Config{Design: DesignDXbar, Load: 0.1}, 0); err == nil {
		t.Error("n=0 must error")
	}
}

// The headline DXbar-vs-Buffered8 gap must exceed seed noise: mean
// difference greater than 3x the pooled standard deviation.
func TestHeadlineGapExceedsSeedNoise(t *testing.T) {
	cfg := Config{Pattern: "UR", Load: 0.45, WarmupCycles: 800, MeasureCycles: 3000, Seed: 7}
	cfg.Design = DesignDXbar
	dx, err := RunSeeds(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Design = DesignBuffered8
	b8, err := RunSeeds(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	gap := dx.Accepted.Mean - b8.Accepted.Mean
	noise := math.Max(dx.Accepted.StdDev, b8.Accepted.StdDev)
	if gap < 3*noise {
		t.Errorf("DXbar-Buffered8 gap %.4f not clearly above seed noise %.4f", gap, noise)
	}
}
